(* Proof-carrying netlist reduction: cone-of-influence + constant
   folding, justified by the Absint fixpoint.

   Where Optimize.run is the conservative legacy pass (single-producer
   constant propagation only), this pass consumes the full abstract
   interpretation: constant *reads* fold through any class the analysis
   proved constant (including multi-driven resolutions and constant
   register outputs), while constant *replacement* — rewriting a class
   to one Sconst driver — keeps Optimize's single-producer discipline
   so the runtime multiple-drive check is preserved verbatim. *)

open Zeus_base

type stats = {
  classes : int;
  const0 : int;
  const1 : int;
  stuckx : int;
  stuckz : int;
  varying : int;
  unobservable : int;
  gates_before : int;
  gates_after : int;
  drivers_before : int;
  drivers_after : int;
  consts_folded : int;
  copies_merged : int;
  nets_eliminated : int;
  steps : int;
}

let pp_stats ppf s =
  Fmt.pf ppf
    "abstract interpretation: %d classes: %d const-0, %d const-1, %d stuck-X, \
     %d stuck-Z, %d varying; %d unobservable (%d steps)@\n\
     reduction: gates %d -> %d, drivers %d -> %d (%d constants folded, %d \
     copies merged, %d nets eliminated)"
    s.classes s.const0 s.const1 s.stuckx s.stuckz s.varying s.unobservable
    s.steps s.gates_before s.gates_after s.drivers_before s.drivers_after
    s.consts_folded s.copies_merged s.nets_eliminated

type result = {
  design : Elaborate.design;
  ai : Absint.t;
  stats : stats;
}

let class_name (design : Elaborate.design) (ai : Absint.t) c =
  let nl = design.Elaborate.netlist in
  let best = ref None in
  Array.iter
    (fun (net : Netlist.net) ->
      if
        ai.Absint.canon.(net.Netlist.id) = c
        && !best = None
        && not (String.contains net.Netlist.name '#')
      then best := Some net.Netlist.name)
    (Netlist.nets_array nl);
  match !best with
  | Some name -> name
  | None -> (Netlist.net nl ai.Absint.rep.(c)).Netlist.name

let run (design : Elaborate.design) =
  let ai = Absint.analyze design in
  let nl = design.Elaborate.netlist in
  let canon id = ai.Absint.canon.(id) in
  let const_of c =
    match ai.Absint.value.(c) with
    | Absint.Const v -> Some v
    | Absint.Bot | Absint.Top -> None
  in
  (* replacement by a constant driver: single producer, combinational,
     not pokeable — exactly the nets whose every producer the rewrite
     may delete without changing drive counts on any other class *)
  let foldable c =
    ai.Absint.producers.(c) = 1
    && (not ai.Absint.input_class.(c))
    && (not ai.Absint.reg_out_class.(c))
    && const_of c <> None
  in
  let rewrite_src s =
    match s with
    | Netlist.Sconst _ -> s
    | Netlist.Snet id -> (
        match const_of (canon id) with
        | Some v -> Netlist.Sconst v
        | None -> s)
  in
  let live c = ai.Absint.observable.(c) in
  (* mux taint per class, for the copy-propagation kind guard *)
  let class_mux = Array.make ai.Absint.n_classes false in
  Array.iter
    (fun (net : Netlist.net) ->
      if net.Netlist.kind = Etype.KMux then
        class_mux.(canon net.Netlist.id) <- true)
    (Netlist.nets_array nl);
  let const_driver_emitted = Array.make ai.Absint.n_classes false in
  (* never-firing drivers already dropped per class — a drop is only
     legal while the class keeps at least one other producer *)
  let guard0_dropped = Array.make ai.Absint.n_classes 0 in
  let gates = ref [] and drivers = ref [] and consts = ref 0 in
  let merges = ref [] and copies = ref 0 in
  (* copy propagation: an unguarded [t := s] whose target class has no
     other producer is a wire, not logic — merge the two classes and
     drop the node.  Guards: the target must not be pokeable (poking
     would then drive the source's whole class) or a register output
     (the stored value is a second influence), and the two classes
     must have the same kind — a boolean net with no driving value
     reads UNDEF where a multiplex one reads NOINFL, and a copy across
     kinds translates between those defaults, which a merge would
     not. *)
  (* RANDOM draws are a pure hash of (seed, dense class id, cycle)
     (Prand): merging any two classes renumbers every later class, so a
     single merge would re-key every RANDOM stream in the design and
     the reduced run would flip different coins.  Copy propagation is
     therefore disabled outright when a RANDOM source is present. *)
  let has_random =
    List.exists
      (fun (g : Netlist.gate) -> g.Netlist.op = Netlist.Grandom)
      (Netlist.gates nl)
  in
  let copy_mergeable tc sc =
    (not has_random)
    && tc <> sc
    && ai.Absint.producers.(tc) = 1
    && (not ai.Absint.input_class.(tc))
    && (not ai.Absint.reg_out_class.(tc))
    && class_mux.(tc) = class_mux.(sc)
  in
  let emit_const target v loc =
    let c = canon target in
    if not const_driver_emitted.(c) then begin
      const_driver_emitted.(c) <- true;
      incr consts;
      drivers :=
        {
          Netlist.did = -1;
          target;
          guard = None;
          source = Netlist.Sconst v;
          dloc = loc;
        }
        :: !drivers
    end
  in
  List.iter
    (fun (g : Netlist.gate) ->
      let out = canon g.Netlist.output in
      if not (live out) then ()
      else if foldable out then
        emit_const g.Netlist.output (Option.get (const_of out)) g.Netlist.gloc
      else begin
        let inputs = List.map rewrite_src g.Netlist.inputs in
        (* identity-input pruning: AND(1,x) = x, OR(0,x) = x, and the
           NAND/NOR duals *)
        let identity v =
          match g.Netlist.op with
          | Netlist.Gand | Netlist.Gnand -> Logic.equal v Logic.One
          | Netlist.Gor | Netlist.Gnor -> Logic.equal v Logic.Zero
          | _ -> false
        in
        let pruned =
          match g.Netlist.op with
          | Netlist.Gand | Netlist.Gnand | Netlist.Gor | Netlist.Gnor ->
              let keep =
                List.filter
                  (function
                    | Netlist.Sconst v -> not (identity v)
                    | Netlist.Snet _ -> true)
                  inputs
              in
              (* never prune to arity zero *)
              if keep = [] then inputs else keep
          | _ -> inputs
        in
        match (g.Netlist.op, pruned) with
        | (Netlist.Gnand | Netlist.Gnor), [ single ] ->
            gates :=
              { g with Netlist.op = Netlist.Gnot; inputs = [ single ] }
              :: !gates
        | _ ->
            (* a one-input AND/OR stays a gate: it doubles as the
               implicit amplifier in front of register inputs *)
            gates := { g with Netlist.inputs = pruned } :: !gates
      end)
    (Netlist.gates nl);
  List.iter
    (fun (d : Netlist.driver) ->
      let t = canon d.Netlist.target in
      if not (live t) then ()
      else if foldable t then
        emit_const d.Netlist.target (Option.get (const_of t)) d.Netlist.dloc
      else begin
        let source = rewrite_src d.Netlist.source in
        let guard =
          match Option.map rewrite_src d.Netlist.guard with
          | Some (Netlist.Sconst v) when Logic.booleanize v = Logic.One ->
              (* provably always fires: unconditional *)
              None
          | g -> g
        in
        match (guard, source) with
        | None, Netlist.Snet s when copy_mergeable t (canon s) ->
            incr copies;
            merges := (d.Netlist.target, s) :: !merges
        | Some (Netlist.Sconst v), _
          when Logic.booleanize v = Logic.Zero
               && ai.Absint.producers.(t) - guard0_dropped.(t) > 1
               && (not ai.Absint.input_class.(t))
               && not ai.Absint.reg_out_class.(t) ->
            (* never fires, contributes NOINFL, and another producer
               remains: dropping it changes neither the resolved value
               nor the runtime drive count *)
            guard0_dropped.(t) <- guard0_dropped.(t) + 1
        | _ -> drivers := { d with Netlist.guard; source } :: !drivers
      end)
    (Netlist.drivers nl);
  let gates = List.rev !gates and drivers = List.rev !drivers in
  let reduced =
    Netlist.with_nodes_merged nl ~gates ~drivers ~merges:!merges
  in
  (* classes whose whole producing cone vanished *)
  let producers_after = Array.make ai.Absint.n_classes 0 in
  List.iter
    (fun (g : Netlist.gate) ->
      let c = canon g.Netlist.output in
      producers_after.(c) <- producers_after.(c) + 1)
    gates;
  List.iter
    (fun (d : Netlist.driver) ->
      let c = canon d.Netlist.target in
      producers_after.(c) <- producers_after.(c) + 1)
    drivers;
  let eliminated = ref 0 in
  Array.iteri
    (fun c before ->
      if before > 0 && producers_after.(c) = 0 then incr eliminated)
    ai.Absint.producers;
  let const0, const1, stuckx, stuckz, varying = Absint.counts ai in
  let stats =
    {
      classes = ai.Absint.n_classes;
      const0;
      const1;
      stuckx;
      stuckz;
      varying;
      unobservable = Absint.unobservable_count ai;
      gates_before = List.length (Netlist.gates nl);
      gates_after = List.length gates;
      drivers_before = List.length (Netlist.drivers nl);
      drivers_after = List.length drivers;
      consts_folded = !consts;
      copies_merged = !copies;
      nets_eliminated = !eliminated;
      steps = ai.Absint.steps;
    }
  in
  { design = { design with Elaborate.netlist = reduced }; ai; stats }

let proof_table r =
  let ai = r.ai in
  let rows = ref [] in
  for c = ai.Absint.n_classes - 1 downto 0 do
    if
      ai.Absint.producers.(c) > 0
      && (ai.Absint.cls.(c) <> Absint.Varying || not ai.Absint.observable.(c))
    then
      rows :=
        ( c,
          class_name r.design ai c,
          ai.Absint.cls.(c),
          ai.Absint.observable.(c),
          ai.Absint.producers.(c) )
        :: !rows
  done;
  !rows

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* bump on incompatible shape changes, like Lint.json_schema_version *)
let json_schema_version = 1

let json_of_result r =
  let ai = r.ai and s = r.stats in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\n  \"version\": %d,\n  \"classes\": [" json_schema_version);
  for c = 0 to ai.Absint.n_classes - 1 do
    if c > 0 then Buffer.add_char b ',';
    Buffer.add_string b
      (Printf.sprintf
         "\n    {\"net\":\"%s\",\"class\":\"%s\",\"observable\":%b,\"producers\":%d}"
         (json_escape (class_name r.design ai c))
         (Absint.classification_to_string ai.Absint.cls.(c))
         ai.Absint.observable.(c) ai.Absint.producers.(c))
  done;
  Buffer.add_string b
    (Printf.sprintf
       "\n  ],\n  \"stats\": {\"classes\":%d,\"const0\":%d,\"const1\":%d,\"stuckx\":%d,\"stuckz\":%d,\"varying\":%d,\"unobservable\":%d,\"gates_before\":%d,\"gates_after\":%d,\"drivers_before\":%d,\"drivers_after\":%d,\"consts_folded\":%d,\"copies_merged\":%d,\"nets_eliminated\":%d,\"steps\":%d}\n}"
       s.classes s.const0 s.const1 s.stuckx s.stuckz s.varying s.unobservable
       s.gates_before s.gates_after s.drivers_before s.drivers_after
       s.consts_folded s.copies_merged s.nets_eliminated s.steps);
  Buffer.contents b
