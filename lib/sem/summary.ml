(* Modular component-summary analysis: one abstract interpretation per
   (component type, canonical parameter signature), composing child
   contracts bottom-up instead of elaborating.  See summary.mli for the
   architecture and the soundness direction. *)

open Zeus_base
open Zeus_lang
module C = Contract
module L = Lint

(* ------------------------------------------------------------------ *)
(* Per-summarization context: terms, slots, atoms                       *)
(* ------------------------------------------------------------------ *)

(* A term is an opaque integer-valued unknown a Lin can mention: a type
   formal, one FOR-variable instance, or a hash-consed non-affine
   subexpression such as [n DIV 2].  Terms are scoped to one
   summarization — contracts carry only strings across types. *)
type term_def =
  | Tbase of C.ival ref (* formal or FOR var: current (refinable) interval *)
  | Topq of (unit -> C.ival) (* derived: recompute under current refinement *)

type idx = Ipt of C.Lin.t | Irg of C.Lin.t * C.Lin.t | Idyn

type driver = {
  d_guard : L.bexp;
  d_idx : idx list;
  d_vars : (int * C.Lin.t * C.Lin.t) list; (* enclosing FOR vars: id, lo, hi *)
  d_loc : Loc.t;
  d_desc : string;
  d_definite : bool; (* context had no may-empty loop or unknown cover *)
  d_undef : bool; (* rhs contains an UNDEF/NOINFL literal *)
  d_srcs : int list; (* support slot ids of rhs and guard *)
  d_dims : (C.Lin.t * C.Lin.t) list; (* dims of the slot it was added to *)
}

type slot = {
  s_id : int;
  s_path : string;
  s_dims : (C.Lin.t * C.Lin.t) list;
  s_port : (string * C.mode) option; (* port of the summarized type *)
  mutable s_uf : int;
  mutable s_smeared : bool; (* alias merged across iteration-dependent idx *)
  mutable s_drivers : driver list;
  mutable s_undef : bool;
  mutable s_seq : bool;
}

type aval = { av_lin : C.Lin.t; av_iv : C.ival }

(* a placed shape: the declaration tree of one signal, with slots *)
type pshape =
  | Pbit of int (* slot id *)
  | Parr of C.Lin.t * C.Lin.t * C.ival * C.ival * pshape
  | Prec of (string * pshape) list
  | Pinst of iref
  | Pvirt

and iref = {
  r_path : string;
  r_type : string; (* bare type name, "REG" for registers *)
  r_key : string; (* summarization key of the child, "" for REG *)
  r_dims : (C.Lin.t * C.Lin.t) list; (* enclosing array dims *)
  r_ports : (string * C.mode * pshape) list;
  r_reg : bool;
  r_reg_init : bool; (* REG(c): defined power-up value *)
  r_comp : comp option; (* the resolved component, for lazy summarization *)
  r_loc : Loc.t;
  mutable r_used : L.bexp; (* OR of use contexts; Bfalse = never used *)
  mutable r_deferred : Diag.t list; (* decl-time findings, flushed on use *)
}

(* bindings of the lexical environment *)
and binding =
  | Vnum of aval (* CONST, type formal, FOR variable *)
  | Vsigc of Ast.sig_const (* declared signal constant *)
  | Vsig of pshape (* declared signal or port *)
  | Vtype of tyd (* named type *)

and tyd = {
  td_formals : string list;
  td_ty : Ast.ty;
  mutable td_env : env;
  td_scope : string;
      (* "" for top-level types; the enclosing summarization key for
         local TYPE declarations, so a local type capturing enclosing
         formals is memoized per enclosing signature *)
}

and env = { vals : (string * binding) list }

(* unplaced shapes, produced by resolve_ty *)
and shape =
  | Hbit
  | Hvirt
  | Harr of aval * aval * shape
  | Hrec of (string * shape) list
  | Hcomp of comp

and comp = {
  h_name : string;
  h_key_hint : int; (* loc offset of the defining Tcomponent, for keying *)
  h_scope : string; (* enclosing summarization key for local types *)
  h_args : aval list;
  h_formals : string list;
  h_ast : Ast.component_ty;
  h_env : env; (* defining environment with formals bound to args *)
  h_ports : (string * C.mode * shape) list;
  h_reg : bool;
  h_reg_init : bool;
}


let lookup env name = List.assoc_opt name env.vals
let bind env name b = { vals = (name, b) :: env.vals }

(* a pending driver contributed by a child instance's OUT/INOUT port,
   resolved once the child's contract is known *)
type pending = {
  p_inst : string; (* instance path, keys into sctx.insts *)
  p_port : string;
  p_guard : L.bexp;
  p_target : int; (* slot receiving the drive *)
  p_idx : idx list;
  p_vars : (int * C.Lin.t * C.Lin.t) list;
  p_loc : Loc.t;
  p_definite : bool;
}

type atom_kind = Aport of int (* slot id *) | Aparam | Aopq

exception Fallback of string
(* raised by resolution when a construct defeats the abstraction;
   caught per-statement: the statement's effects are dropped and the
   type is excluded from the proven sets *)

type sctx = {
  g : gctx;
  s_tname : string;
  s_key : string;
  s_concrete : bool; (* every formal bound to a singleton *)
  (* slots *)
  slot_tbl : (int, slot) Hashtbl.t;
  mutable n_slots : int;
  mutable edges : (int * int * int option) list; (* src, dst, shift *)
  mutable undef_edges : (int * int) list; (* UNDEF flows across a REG *)
  insts : (string, iref) Hashtbl.t;
  mutable pendings : pending list;
  (* atoms *)
  mutable n_atoms : int;
  atom_kinds : (int, atom_kind) Hashtbl.t;
  atom_descs : (int, string) Hashtbl.t;
  atom_share : (string, int) Hashtbl.t; (* slot-ref key -> shared atom *)
  (* state of the walk *)
  mutable loop_vars : (int * C.Lin.t * C.Lin.t) list; (* innermost first *)
  mutable with_stack : (pshape * string) list; (* place, path prefix *)
  mutable if_sup : (int * C.Lin.t option) list; (* IF-condition support *)
  mutable definite_ctx : bool;
  mutable s_fallbacks : string list;
  mutable s_findings : Diag.t list;
}

and gctx = {
  (* terms are global to the analyze run: captured environments (local
     types referencing enclosing formals) cross summarization
     boundaries, so Lin term ids must stay meaningful across them *)
  terms : (string, int) Hashtbl.t; (* canonical key -> id *)
  term_defs : (int, term_def) Hashtbl.t;
  mutable n_terms : int;
  memo : (string, entry) Hashtbl.t;
  mutable stack : string list;
  mutable pending_deps : string list; (* keys read as in-progress iterates *)
  mutable g_findings : Diag.t list;
  mutable summaries : int;
  mutable cache_hits : int;
  mutable contracts_acc : (string * C.t) list; (* completion order, reversed *)
  mutable types_seen : (string, unit) Hashtbl.t;
  mutable proven_conflict : (string, bool) Hashtbl.t; (* false = disproven *)
  mutable proven_cycle : (string, bool) Hashtbl.t;
  g_fallbacks : (string * string) list ref;
  cache_dir : string option;
  digest : string;
  symbolic : bool;
}

and entry = Edone of C.t | Ework of C.t ref

let max_stack_depth = 64
let max_summaries = 4096
let max_fixpoint_iters = 8
let conflict_budget = 2048

(* ------------------------------------------------------------------ *)
(* Terms and interval evaluation                                        *)
(* ------------------------------------------------------------------ *)

let new_term sx key def =
  let g = sx.g in
  match Hashtbl.find_opt g.terms key with
  | Some id -> id
  | None ->
      let id = g.n_terms in
      g.n_terms <- id + 1;
      Hashtbl.replace g.terms key id;
      Hashtbl.replace g.term_defs id def;
      id

let fresh_term sx prefix def =
  let g = sx.g in
  let id = g.n_terms in
  g.n_terms <- id + 1;
  Hashtbl.replace g.terms (Printf.sprintf "%s#%d" prefix id) id;
  Hashtbl.replace g.term_defs id def;
  id

let iv_of_term sx id =
  match Hashtbl.find_opt sx.g.term_defs id with
  | Some (Tbase r) -> !r
  | Some (Topq f) -> f ()
  | None -> C.itop

let iv_of_lin sx (l : C.Lin.t) =
  List.fold_left
    (fun acc (id, c) ->
      C.iadd acc (C.imul (C.iconst c) (iv_of_term sx id)))
    (C.iconst l.C.Lin.k) l.C.Lin.terms

(* definite sign of a Lin difference: via its constant form or the
   interval evaluation of its terms *)
let lin_definitely_neg sx l =
  match C.Lin.const_val l with
  | Some k -> k < 0
  | None -> ( match C.hi_of (iv_of_lin sx l) with Some h -> h < 0 | None -> false)


(* substitute a FOR variable by one of its bounds inside a Lin *)
let subst_var (l : C.Lin.t) v bound =
  let c = C.Lin.coeff_of v l in
  if c = 0 then l
  else C.Lin.add (C.Lin.sub l (C.Lin.term ~coeff:c v)) (C.Lin.scale c bound)

(* the index set a Point sweeps as the driver's FOR variables range over
   their bounds: substitute each var by the end minimizing/maximizing
   the expression (by coefficient sign) *)
let sweep_range vars l =
  let lo, hi =
    List.fold_left
      (fun (lo, hi) (v, blo, bhi) ->
        let c = C.Lin.coeff_of v lo in
        let lo = if c >= 0 then subst_var lo v blo else subst_var lo v bhi in
        let c' = C.Lin.coeff_of v hi in
        let hi = if c' >= 0 then subst_var hi v bhi else subst_var hi v blo in
        (lo, hi))
      (l, l) vars
  in
  (lo, hi)

(* ------------------------------------------------------------------ *)
(* Constant expressions -> abstract values                              *)
(* ------------------------------------------------------------------ *)

let opq_name = function
  | Ast.Cmul -> "MUL"
  | Ast.Cdiv -> "DIV"
  | Ast.Cmod -> "MOD"
  | Ast.Cand -> "AND"
  | Ast.Cor -> "OR"
  | Ast.Cadd -> "ADD"
  | Ast.Csub -> "SUB"

(* an opaque term for a non-affine operation; its interval re-evaluates
   under the current refinement of the operand terms *)
let opaque_av sx op (a : aval) (b : aval) =
  let key =
    Printf.sprintf "%s(%s,%s)" (opq_name op) (C.Lin.to_key a.av_lin)
      (C.Lin.to_key b.av_lin)
  in
  let ivf () =
    let ia = iv_of_lin sx a.av_lin and ib = iv_of_lin sx b.av_lin in
    match op with
    | Ast.Cmul -> C.imul ia ib
    | Ast.Cdiv -> C.idiv ia ib
    | Ast.Cmod -> C.imod ia ib
    | Ast.Cand | Ast.Cor -> C.itop
    | Ast.Cadd -> C.iadd ia ib
    | Ast.Csub -> C.isub ia ib
  in
  let id = new_term sx key (Topq ivf) in
  { av_lin = C.Lin.term id; av_iv = ivf () }

let rec ceval sx env (e : Ast.const_expr) : aval =
  match e with
  | Ast.Cnum (n, _) -> { av_lin = C.Lin.const n; av_iv = C.iconst n }
  | Ast.Cref (id, []) -> (
      match lookup env id.Ast.id with
      | Some (Vnum av) ->
          (* re-evaluate the interval: WHEN-arm refinement may have
             narrowed the underlying term since binding *)
          { av with av_iv = iv_of_lin sx av.av_lin }
      | _ -> raise (Fallback (Printf.sprintf "unresolved constant '%s'" id.Ast.id)))
  | Ast.Cref (id, args) -> (
      let avs = List.map (ceval sx env) args in
      match (id.Ast.id, avs) with
      | "min", [ a; b ] | "max", [ a; b ] ->
          let iv =
            match (C.singleton a.av_iv, C.singleton b.av_iv) with
            | Some x, Some y ->
                C.iconst (if id.Ast.id = "min" then min x y else max x y)
            | _ -> C.join a.av_iv b.av_iv
          in
          let key =
            Printf.sprintf "%s(%s,%s)" id.Ast.id (C.Lin.to_key a.av_lin)
              (C.Lin.to_key b.av_lin)
          in
          (match C.singleton iv with
          | Some n -> { av_lin = C.Lin.const n; av_iv = iv }
          | None ->
              let t = new_term sx key (Tbase (ref iv)) in
              { av_lin = C.Lin.term t; av_iv = iv })
      | "odd", [ a ] -> (
          match C.singleton a.av_iv with
          | Some x ->
              let v = if x land 1 = 1 then 1 else 0 in
              { av_lin = C.Lin.const v; av_iv = C.iconst v }
          | None ->
              let t =
                new_term sx
                  ("odd(" ^ C.Lin.to_key a.av_lin ^ ")")
                  (Tbase (ref (C.range (Some 0) (Some 1))))
              in
              { av_lin = C.Lin.term t; av_iv = C.range (Some 0) (Some 1) })
      | _ ->
          raise
            (Fallback
               (Printf.sprintf "unresolved constant function '%s'" id.Ast.id)))
  | Ast.Cbin (op, a, b) -> (
      let va = ceval sx env a and vb = ceval sx env b in
      match op with
      | Ast.Cadd ->
          { av_lin = C.Lin.add va.av_lin vb.av_lin;
            av_iv = C.iadd va.av_iv vb.av_iv }
      | Ast.Csub ->
          { av_lin = C.Lin.sub va.av_lin vb.av_lin;
            av_iv = C.isub va.av_iv vb.av_iv }
      | Ast.Cmul -> (
          match (C.Lin.const_val va.av_lin, C.Lin.const_val vb.av_lin) with
          | Some k, _ ->
              { av_lin = C.Lin.scale k vb.av_lin;
                av_iv = C.imul va.av_iv vb.av_iv }
          | _, Some k ->
              { av_lin = C.Lin.scale k va.av_lin;
                av_iv = C.imul va.av_iv vb.av_iv }
          | None, None -> opaque_av sx op va vb)
      | Ast.Cdiv | Ast.Cmod -> (
          match (C.Lin.const_val va.av_lin, C.Lin.const_val vb.av_lin) with
          | Some x, Some y when y <> 0 ->
              let v = if op = Ast.Cdiv then x / y else x mod y in
              { av_lin = C.Lin.const v; av_iv = C.iconst v }
          | _ -> opaque_av sx op va vb)
      | Ast.Cand | Ast.Cor -> (
          (* boolean connectives over constant relations: 0/1 valued *)
          match (C.singleton va.av_iv, C.singleton vb.av_iv) with
          | Some x, Some y ->
              let v =
                if op = Ast.Cand then if x <> 0 && y <> 0 then 1 else 0
                else if x <> 0 || y <> 0 then 1
                else 0
              in
              { av_lin = C.Lin.const v; av_iv = C.iconst v }
          | _ -> opaque_av sx op va vb))
  | Ast.Cun (op, a) -> (
      let va = ceval sx env a in
      match op with
      | Ast.Cpos -> va
      | Ast.Cneg ->
          { av_lin = C.Lin.scale (-1) va.av_lin; av_iv = C.ineg va.av_iv }
      | Ast.Cnot -> (
          match C.singleton va.av_iv with
          | Some x ->
              let v = if x = 0 then 1 else 0 in
              { av_lin = C.Lin.const v; av_iv = C.iconst v }
          | None ->
              { av_lin = C.Lin.const 0; av_iv = C.range (Some 0) (Some 1) }))
  | Ast.Crel (rel, a, b) -> (
      match crel_truth sx env rel a b with
      | C.True -> { av_lin = C.Lin.const 1; av_iv = C.iconst 1 }
      | C.False -> { av_lin = C.Lin.const 0; av_iv = C.iconst 0 }
      | C.Unknown ->
          { av_lin = C.Lin.const 0; av_iv = C.range (Some 0) (Some 1) })

(* three-valued truth of a constant relation, deciding WHEN arms *)
and crel_truth sx env rel a b : C.truth =
  let va = ceval sx env a and vb = ceval sx env b in
  (* first try the symbolic difference: decides n DIV 2 < n DIV 2 + 1 *)
  let d = C.Lin.sub va.av_lin vb.av_lin in
  match (C.Lin.const_val d, rel) with
  | Some k, Ast.Ceq -> if k = 0 then C.True else C.False
  | Some k, Ast.Cneq -> if k <> 0 then C.True else C.False
  | Some k, Ast.Clt -> if k < 0 then C.True else C.False
  | Some k, Ast.Cle -> if k <= 0 then C.True else C.False
  | Some k, Ast.Cgt -> if k > 0 then C.True else C.False
  | Some k, Ast.Cge -> if k >= 0 then C.True else C.False
  | None, _ -> (
      let ia = va.av_iv and ib = vb.av_iv in
      match rel with
      | Ast.Ceq -> C.cmp_eq ia ib
      | Ast.Cneq -> C.tnot (C.cmp_eq ia ib)
      | Ast.Clt -> C.cmp_lt ia ib
      | Ast.Cle -> C.cmp_le ia ib
      | Ast.Cgt -> C.cmp_lt ib ia
      | Ast.Cge -> C.cmp_le ib ia)

(* Refine the base term of [e]'s value by [e <rel> bound] (or its
   negation), returning an undo closure.  Only bare formals/FOR vars
   (and formal +/- const) refine; anything else is a no-op. *)
let refine_by_rel sx env ~negated rel a b =
  let refinable e =
    match e with
    | Ast.Cref (id, []) -> (
        match lookup env id.Ast.id with
        | Some (Vnum av) -> (
            match av.av_lin.C.Lin.terms with
            | [ (t, 1) ] -> (
                match Hashtbl.find_opt sx.g.term_defs t with
                | Some (Tbase r) -> Some (t, r, av.av_lin.C.Lin.k)
                | _ -> None)
            | _ -> None)
        | _ -> None)
    | _ -> None
  in
  let apply (_, r, off) rel other =
    (* term + off <rel> other  ==>  term <rel> other - off *)
    let old = !r in
    let w = C.isub other (C.iconst off) in
    let refined =
      match rel with
      | Ast.Ceq -> C.refine_eq old w
      | Ast.Cneq -> C.refine_ne old w
      | Ast.Clt -> C.refine_lt old w
      | Ast.Cle -> C.refine_le old w
      | Ast.Cgt -> C.refine_gt old w
      | Ast.Cge -> C.refine_ge old w
    in
    r := refined;
    fun () -> r := old
  in
  let negate = function
    | Ast.Ceq -> Ast.Cneq
    | Ast.Cneq -> Ast.Ceq
    | Ast.Clt -> Ast.Cge
    | Ast.Cle -> Ast.Cgt
    | Ast.Cgt -> Ast.Cle
    | Ast.Cge -> Ast.Clt
  in
  let rel = if negated then negate rel else rel in
  let flip = function
    | Ast.Clt -> Ast.Cgt
    | Ast.Cle -> Ast.Cge
    | Ast.Cgt -> Ast.Clt
    | Ast.Cge -> Ast.Cle
    | r -> r
  in
  try
    match (refinable a, refinable b) with
    | Some t, None -> apply t rel (ceval sx env b).av_iv
    | None, Some t -> apply t (flip rel) (ceval sx env a).av_iv
    | Some t, Some _ -> apply t rel (ceval sx env b).av_iv
    | None, None -> fun () -> ()
  with Fallback _ -> fun () -> ()

(* ------------------------------------------------------------------ *)
(* Slots and union-find                                                 *)
(* ------------------------------------------------------------------ *)

let new_slot sx ~path ~dims ~port =
  let id = sx.n_slots in
  sx.n_slots <- id + 1;
  let s =
    { s_id = id; s_path = path; s_dims = dims; s_port = port; s_uf = id;
      s_smeared = false; s_drivers = []; s_undef = false; s_seq = false }
  in
  Hashtbl.replace sx.slot_tbl id s;
  id

let slot sx id = Hashtbl.find sx.slot_tbl id

let rec uf_find sx id =
  let s = slot sx id in
  if s.s_uf = id then id
  else begin
    let root = uf_find sx s.s_uf in
    s.s_uf <- root;
    root
  end

let uf_union sx a b =
  let ra = uf_find sx a and rb = uf_find sx b in
  if ra <> rb then begin
    let sa = slot sx ra and sb = slot sx rb in
    (* keep the port slot (or the lower id) as the representative so
       contract assembly finds drivers on port classes *)
    let keep, drop =
      match (sa.s_port, sb.s_port) with
      | Some _, None -> (sa, sb)
      | None, Some _ -> (sb, sa)
      | _ -> if ra < rb then (sa, sb) else (sb, sa)
    in
    drop.s_uf <- keep.s_id;
    keep.s_smeared <- keep.s_smeared || drop.s_smeared
  end

let smear sx id = (slot sx (uf_find sx id)).s_smeared <- true

let add_edge sx ~src ~dst ~shift =
  sx.edges <- (uf_find sx src, uf_find sx dst, shift) :: sx.edges

(* ------------------------------------------------------------------ *)
(* Type resolution and signal placement                                 *)
(* ------------------------------------------------------------------ *)

let mode_of_ast = function
  | Ast.Min -> C.In
  | Ast.Mout -> C.Out
  | Ast.Minout -> C.Inout

let gate_names =
  [ "AND"; "OR"; "NAND"; "NOR"; "XOR"; "NOT"; "EQUAL"; "RANDOM"; "BIN"; "NUM" ]

let max_resolve_depth = 48

let rec resolve_ty sx env depth (ty : Ast.ty) : shape =
  if depth > max_resolve_depth then
    raise (Fallback "type recursion too deep to resolve");
  match ty with
  | Ast.Tarray (lo, hi, elt, _) ->
      let alo = ceval sx env lo and ahi = ceval sx env hi in
      Harr (alo, ahi, resolve_ty sx env (depth + 1) elt)
  | Ast.Tcomponent (c, loc) ->
      resolve_component sx env depth ~name:"<anonymous>" ~scope:sx.s_key
        ~formals:[] ~args:[] c loc
  | Ast.Tname (id, args) -> (
      match (id.Ast.id, args) with
      | ("boolean" | "multiplex"), [] -> Hbit
      | "virtual", [] -> Hvirt
      | "REG", [] ->
          Hcomp
            { h_name = "REG"; h_key_hint = 0; h_scope = ""; h_args = [];
              h_formals = [];
              h_ast =
                { Ast.cparams = []; chead_layout = []; cresult = None;
                  cbody = None };
              h_env = env;
              h_ports = [ ("in", C.In, Hbit); ("out", C.Out, Hbit) ];
              h_reg = true; h_reg_init = false }
      | "REG", [ _ ] ->
          Hcomp
            { h_name = "REG"; h_key_hint = 0; h_scope = ""; h_args = [];
              h_formals = [];
              h_ast =
                { Ast.cparams = []; chead_layout = []; cresult = None;
                  cbody = None };
              h_env = env;
              h_ports = [ ("in", C.In, Hbit); ("out", C.Out, Hbit) ];
              h_reg = true; h_reg_init = true }
      | name, args -> (
          match lookup env name with
          | Some (Vtype td) -> (
              let avs = List.map (ceval sx env) args in
              if List.length td.td_formals <> List.length avs then
                raise
                  (Fallback
                     (Printf.sprintf "type '%s' expects %d parameters" name
                        (List.length td.td_formals)));
              let env' =
                List.fold_left2
                  (fun e f a -> bind e f (Vnum a))
                  td.td_env td.td_formals avs
              in
              match td.td_ty with
              | Ast.Tcomponent (c, loc) ->
                  resolve_component sx env' depth ~name ~scope:td.td_scope
                    ~formals:td.td_formals ~args:avs c loc
              | ty -> resolve_ty sx env' (depth + 1) ty)
          | _ ->
              raise (Fallback (Printf.sprintf "unresolved type '%s'" name))))

and resolve_component sx env depth ~name ~scope ~formals ~args c loc : shape =
  match (c.Ast.cbody, c.Ast.cresult) with
  | None, None ->
      (* record type: component without body *)
      Hrec
        (List.concat_map
           (fun (p : Ast.fparam) ->
             let sh = resolve_ty sx env (depth + 1) p.Ast.fty in
             List.map (fun (n : Ast.ident) -> (n.Ast.id, sh)) p.Ast.fnames)
           c.Ast.cparams)
  | _ ->
      let ports =
        List.concat_map
          (fun (p : Ast.fparam) ->
            let m = mode_of_ast p.Ast.fmode in
            let sh = resolve_ty sx env (depth + 1) p.Ast.fty in
            List.map (fun (n : Ast.ident) -> (n.Ast.id, m, sh)) p.Ast.fnames)
          c.Ast.cparams
      in
      let ports =
        match c.Ast.cresult with
        | Some rty ->
            ports @ [ ("$result", C.Out, resolve_ty sx env (depth + 1) rty) ]
        | None -> ports
      in
      Hcomp
        { h_name = name; h_key_hint = loc.Loc.start.Loc.offset;
          h_scope = scope; h_args = args; h_formals = formals; h_ast = c;
          h_env = env; h_ports = ports; h_reg = false; h_reg_init = false }

(* canonical signature of a child instantiation, from argument ivals *)
let sig_of_args sx (args : aval list) =
  String.concat ","
    (List.map (fun a -> C.ival_to_string (iv_of_lin sx a.av_lin)) args)

let summarize_key (h : comp) sigs =
  Printf.sprintf "%s@%d%s(%s)" h.h_name h.h_key_hint
    (if h.h_scope = "" then "" else "[" ^ h.h_scope ^ "]")
    sigs

(* place a shape: allocate slots under [path] with accumulated [dims] *)
let rec place sx ~path ~dims ~port (sh : shape) : pshape =
  match sh with
  | Hbit -> Pbit (new_slot sx ~path ~dims ~port)
  | Hvirt -> Pvirt
  | Harr (lo, hi, elt) ->
      (* a definitely-empty range is a Z404 at use time; deferred by
         the caller for instance shapes *)
      Parr
        ( lo.av_lin, hi.av_lin, lo.av_iv, hi.av_iv,
          place sx ~path ~dims:(dims @ [ (lo.av_lin, hi.av_lin) ]) ~port elt )
  | Hrec fields ->
      Prec
        (List.map
           (fun (f, s) ->
             (f, place sx ~path:(path ^ "." ^ f) ~dims ~port s))
           fields)
  | Hcomp h ->
      let sigs = sig_of_args sx h.h_args in
      let key = if h.h_reg then "" else summarize_key h sigs in
      let ports =
        List.map
          (fun (pn, m, psh) ->
            (pn, m, place sx ~path:(path ^ "." ^ pn) ~dims ~port:None psh))
          h.h_ports
      in
      let r =
        { r_path = path; r_type = h.h_name; r_key = key; r_dims = dims;
          r_ports = ports; r_reg = h.h_reg; r_reg_init = h.h_reg_init;
          r_comp = (if h.h_reg then None else Some h);
          r_loc = Loc.dummy; r_used = L.Bfalse; r_deferred = [] }
      in
      Hashtbl.replace sx.insts path r;
      Pinst r

(* ------------------------------------------------------------------ *)
(* Findings                                                             *)
(* ------------------------------------------------------------------ *)

let finding sx ~sev ~code ~loc fmt =
  Fmt.kstr
    (fun message ->
      let d =
        { Diag.severity = sev; kind = Diag.Lint_error; code = Some code;
          loc; message }
      in
      sx.s_findings <- d :: sx.s_findings)
    fmt

let fallback_note sx reason =
  if not (List.mem reason sx.s_fallbacks) then
    sx.s_fallbacks <- reason :: sx.s_fallbacks

(* ------------------------------------------------------------------ *)
(* Reference resolution                                                 *)
(* ------------------------------------------------------------------ *)

(* result of resolving a signal_ref against the placed shapes *)
type rref = {
  rr_base : pshape; (* shape remaining after the selectors *)
  rr_idx : idx list; (* accumulated (collapsed) indices *)
  rr_crossed : (iref * string * C.mode) option; (* innermost port crossing *)
  rr_varidx : bool; (* an index mentions a FOR variable *)
}

let mentions_loop_var sx (l : C.Lin.t) =
  List.exists (fun (v, _, _) -> C.Lin.mentions v l) sx.loop_vars

(* index bounds check at a use site (lazy: unused hardware never gets
   here, mirroring section 4.2) *)
let check_index sx ~loc (av : aval) (ivlo : C.ival) (ivhi : C.ival) =
  let iv = iv_of_lin sx av.av_lin in
  if C.cmp_le ivlo ivhi = C.False then
    finding sx
      ~sev:(if sx.s_concrete then Diag.Error else Diag.Warning)
      ~code:Diag.Code.modular_range ~loc
      "ARRAY range is empty for %s parameters of %s"
      (if sx.s_concrete then "the instantiated" else "all")
      sx.s_key
  else if C.cmp_lt iv ivlo = C.True || C.cmp_lt ivhi iv = C.True then
    finding sx
      ~sev:(if sx.s_concrete then Diag.Error else Diag.Warning)
      ~code:Diag.Code.modular_range ~loc
      "index %s out of ARRAY bounds %s..%s in %s"
      (C.ival_to_string iv) (C.ival_to_string ivlo) (C.ival_to_string ivhi)
      sx.s_key
  else if
    sx.s_concrete
    && (C.cmp_le ivlo iv <> C.True || C.cmp_le iv ivhi <> C.True)
  then begin
    finding sx ~sev:Diag.Warning ~code:Diag.Code.modular_coarse ~loc
      "interval %s too coarse to bound this index within %s..%s — falling \
       back to elaboration for %s"
      (C.ival_to_string iv) (C.ival_to_string ivlo) (C.ival_to_string ivhi)
      sx.s_key;
    fallback_note sx "coarse interval at an index"
  end

let rec nav_field ps f =
  match ps with
  | Prec fields -> List.assoc_opt f fields
  | Pinst r -> (
      match List.find_opt (fun (n, _, _) -> n = f) r.r_ports with
      | Some (_, _, p) -> Some p
      | None -> None)
  | _ -> None

and resolve_ref sx env (sref : Ast.signal_ref) : rref =
  match sref with
  | Ast.Star _ -> (
      match sx.with_stack with
      | (ps, _) :: _ ->
          { rr_base = ps; rr_idx = []; rr_crossed = None; rr_varidx = false }
      | [] -> raise (Fallback "'*' outside WITH"))
  | Ast.Sig (id, sels) ->
      let root =
        (* innermost WITH prefixes shadow the lexical scope *)
        let rec from_with = function
          | [] -> None
          | (ps, _) :: rest -> (
              match nav_field ps id.Ast.id with
              | Some p -> Some p
              | None -> from_with rest)
        in
        match from_with sx.with_stack with
        | Some p -> Some p
        | None -> (
            match lookup env id.Ast.id with
            | Some (Vsig p) -> Some p
            | _ -> None)
      in
      let root =
        match root with
        | Some p -> p
        | None ->
            raise (Fallback (Printf.sprintf "unresolved signal '%s'" id.Ast.id))
      in
      let crossed = ref None in
      let varidx = ref false in
      let rec go ps idx = function
        | [] -> { rr_base = ps; rr_idx = List.rev idx;
                  rr_crossed = !crossed; rr_varidx = !varidx }
        | Ast.Sel_index e :: rest -> (
            match ps with
            | Parr (_, _, ivlo, ivhi, elt) ->
                let av = ceval sx env e in
                check_index sx ~loc:(Ast.const_expr_loc e) av ivlo ivhi;
                if mentions_loop_var sx av.av_lin then varidx := true;
                go elt (Ipt av.av_lin :: idx) rest
            | _ -> raise (Fallback "index into a non-array"))
        | Ast.Sel_range (a, b) :: rest -> (
            match ps with
            | Parr (_, _, ivlo, ivhi, elt) ->
                let va = ceval sx env a and vb = ceval sx env b in
                check_index sx ~loc:(Ast.const_expr_loc a) va ivlo ivhi;
                check_index sx ~loc:(Ast.const_expr_loc b) vb ivlo ivhi;
                if
                  mentions_loop_var sx va.av_lin
                  || mentions_loop_var sx vb.av_lin
                then varidx := true;
                go elt (Irg (va.av_lin, vb.av_lin) :: idx) rest
            | _ -> raise (Fallback "range-index into a non-array"))
        | Ast.Sel_field f :: rest -> (
            (match ps with
            | Pinst r -> (
                match List.find_opt (fun (n, _, _) -> n = f.Ast.id) r.r_ports with
                | Some (_, m, _) -> crossed := Some (r, f.Ast.id, m)
                | None -> ())
            | _ -> ());
            match nav_field ps f.Ast.id with
            | Some p -> go p idx rest
            | None ->
                raise
                  (Fallback (Printf.sprintf "unresolved field '%s'" f.Ast.id)))
        | Ast.Sel_num _ :: rest -> (
            (* a dynamic index: any element may be touched, and the
               dependence on the index signal is not tracked — the
               fallback note keeps the type out of the proven sets *)
            match ps with
            | Parr (_, _, _, _, elt) ->
                fallback_note sx "dynamic NUM index";
                varidx := true;
                go elt (Idyn :: idx) rest
            | _ -> raise (Fallback "dynamic index into a non-array"))
        | Ast.Sel_field_range _ :: _ -> raise (Fallback "field range selector")
      in
      go root [] sels

(* all bit slots under a placed shape, with the full-range padding for
   the dims below the resolution point *)
let rec pleaves ps (extra : idx list) : (int * idx list) list =
  match ps with
  | Pbit id -> [ (id, List.rev extra) ]
  | Pvirt -> []
  | Parr (lo, hi, _, _, elt) -> pleaves elt (Irg (lo, hi) :: extra)
  | Prec fields -> List.concat_map (fun (_, p) -> pleaves p extra) fields
  | Pinst r ->
      (* reading/driving a whole instance: all its ports *)
      List.concat_map (fun (_, _, p) -> pleaves p extra) r.r_ports

let leaves rr = pleaves rr.rr_base []

let first_pt = function Ipt l :: _ -> Some l | _ -> None

(* OR a use context into an instance and flush its deferred findings *)
let use_inst sx guard (r : iref) =
  if r.r_used = L.Bfalse && r.r_deferred <> [] then begin
    sx.s_findings <- r.r_deferred @ sx.s_findings;
    r.r_deferred <- []
  end;
  r.r_used <- L.bor [ r.r_used; guard ]

(* ------------------------------------------------------------------ *)
(* Atoms                                                                *)
(* ------------------------------------------------------------------ *)

let fresh_atom sx kind desc =
  let a = sx.n_atoms in
  sx.n_atoms <- a + 1;
  Hashtbl.replace sx.atom_kinds a kind;
  Hashtbl.replace sx.atom_descs a desc;
  a

let idx_key idxs =
  String.concat ";"
    (List.map
       (function
         | Ipt l -> C.Lin.to_key l
         | Irg (a, b) -> C.Lin.to_key a ^ ".." ^ C.Lin.to_key b
         | Idyn -> "?")
       idxs)

(* the atom for reading one bit slot: shared between occurrences of the
   same reference so complementary IF guards cancel — but only when no
   FOR variable is involved (two iterations read different elements) *)
let slot_atom sx slotid idxs varidx desc =
  if varidx then fresh_atom sx Aopq desc
  else
    let key = Printf.sprintf "%d:%s" (uf_find sx slotid) (idx_key idxs) in
    match Hashtbl.find_opt sx.atom_share key with
    | Some a -> a
    | None ->
        let a = fresh_atom sx (Aport (uf_find sx slotid)) desc in
        Hashtbl.replace sx.atom_share key a;
        a

(* ------------------------------------------------------------------ *)
(* Expressions and statements                                           *)
(* ------------------------------------------------------------------ *)

(* evaluated expression: support slots (with first-index Lin for shift
   labelling), possible-UNDEF flag, definiteness, and — when the
   expression is a boolean formula the prover can use — its bexp *)
type eres = {
  e_sup : (int * C.Lin.t option) list;
  e_undef : bool;
  e_def : bool;
  e_guard : L.bexp option;
}

let pure ?(g = None) () = { e_sup = []; e_undef = false; e_def = true; e_guard = g }

let union_sup rs =
  {
    e_sup = List.concat_map (fun r -> r.e_sup) rs;
    e_undef = List.exists (fun r -> r.e_undef) rs;
    e_def = List.for_all (fun r -> r.e_def) rs;
    e_guard = None;
  }

let rec sc_undef env (sc : Ast.sig_const) =
  match sc with
  | Ast.Sc_value _ -> false
  | Ast.Sc_bin _ -> false
  | Ast.Sc_tuple (l, _) -> List.exists (sc_undef env) l
  | Ast.Sc_ref id -> (
      match id.Ast.id with
      | "UNDEF" | "NOINFL" -> true
      | n -> (
          match lookup env n with
          | Some (Vsigc sc) -> sc_undef env sc
          | _ -> false))

let gate_guard name (args : L.bexp list) =
  match (name, args) with
  | "AND", _ -> Some (L.band args)
  | "OR", _ -> Some (L.bor args)
  | "NAND", _ -> Some (L.bnot (L.band args))
  | "NOR", _ -> Some (L.bnot (L.bor args))
  | "NOT", [ a ] -> Some (L.bnot a)
  | "XOR", [ a; b ] -> Some (L.bxor a b)
  | "EQUAL", [ a; b ] -> Some (L.bnot (L.bxor a b))
  | _ -> None

let rec eval_expr sx env ~guard (e : Ast.expr) : eres =
  match e with
  | Ast.Eref sref -> eval_ref sx env ~guard sref (Ast.signal_ref_loc sref)
  | Ast.Econst sc ->
      let u = sc_undef env sc in
      { e_sup = []; e_undef = u; e_def = true;
        e_guard =
          (match sc with
          | Ast.Sc_value (0, _) -> Some L.Bfalse
          | Ast.Sc_value (_, _) -> Some L.Btrue
          | _ -> None) }
  | Ast.Ebin (_, width, loc) ->
      (match crel_truth sx env Ast.Cle width (Ast.Cnum (0, Loc.dummy)) with
      | C.True ->
          finding sx
            ~sev:(if sx.s_concrete then Diag.Error else Diag.Warning)
            ~code:Diag.Code.modular_range ~loc
            "BIN width is non-positive in %s" sx.s_key
      | _ -> ());
      pure ()
  | Ast.Estar (_, _) -> raise (Fallback "'*' expression")
  | Ast.Etuple (es, _) -> union_sup (List.map (eval_expr sx env ~guard) es)
  | Ast.Ecall (id, params, args, loc) -> (
      if List.mem id.Ast.id gate_names then begin
        match id.Ast.id with
        | "RANDOM" -> pure ()
        | "BIN" -> pure ()
        | _ ->
            let rs = List.map (eval_expr sx env ~guard) args in
            let u = union_sup rs in
            let g =
              if List.for_all (fun r -> r.e_guard <> None) rs then
                gate_guard id.Ast.id
                  (List.map
                     (fun r -> match r.e_guard with Some g -> g | None -> L.Btrue)
                     rs)
              else None
            in
            { u with e_guard = g }
      end
      else
        (* function-component call: an anonymous instance at this site *)
        call_function sx env ~guard id params args loc)

and eval_ref sx env ~guard sref _loc =
  match sref with
  | Ast.Sig (id, []) when
      (match lookup env id.Ast.id with
      | Some (Vnum _ | Vsigc _) -> true
      | _ -> false) -> (
      (* a constant in signal position *)
      match lookup env id.Ast.id with
      | Some (Vnum av) -> (
          match C.singleton (iv_of_lin sx av.av_lin) with
          | Some 0 -> pure ~g:(Some L.Bfalse) ()
          | Some _ -> pure ~g:(Some L.Btrue) ()
          | None -> pure ())
      | Some (Vsigc sc) ->
          { e_sup = []; e_undef = sc_undef env sc; e_def = true; e_guard = None }
      | _ -> pure ())
  | _ -> (
      let rr = resolve_ref sx env sref in
      (match rr.rr_crossed with
      | Some (r, _, _) -> use_inst sx guard r
      | None -> ());
      let ls = leaves rr in
      let sup =
        List.map (fun (s, extra) -> (s, first_pt (rr.rr_idx @ extra))) ls
      in
      let g =
        match ls with
        | [ (s, extra) ] ->
            let idxs = rr.rr_idx @ extra in
            if List.exists (function Irg _ | Idyn -> true | Ipt _ -> false) idxs
            then None (* multi-bit reference: not a single boolean atom *)
            else
              (* single-bit reference: an atom the prover can split on *)
              Some (L.Bvar (slot_atom sx s idxs rr.rr_varidx (ref_desc sx s idxs)))
        | _ -> None
      in
      { e_sup = sup; e_undef = false; e_def = true; e_guard = g })

and ref_desc sx s idxs =
  let p = (slot sx s).s_path in
  match idxs with
  | [] -> p
  | _ -> p ^ "[" ^ idx_key idxs ^ "]"

(* a function-component call: instantiate (once per call site), drive
   its IN formals from the arguments, return its $result as support *)
and call_function sx env ~guard id params args loc =
  match lookup env id.Ast.id with
  | Some (Vtype td) -> (
      let avs = List.map (ceval sx env) params in
      if List.length td.td_formals <> List.length avs then
        raise (Fallback (Printf.sprintf "call arity of '%s'" id.Ast.id));
      let env' =
        List.fold_left2 (fun e f a -> bind e f (Vnum a)) td.td_env
          td.td_formals avs
      in
      match td.td_ty with
      | Ast.Tcomponent (c, tloc) when c.Ast.cresult <> None ->
          let sh =
            resolve_component sx env' 0 ~name:id.Ast.id ~scope:td.td_scope
              ~formals:td.td_formals ~args:avs c tloc
          in
          let path =
            Printf.sprintf "%s$call@%d" id.Ast.id loc.Loc.start.Loc.offset
          in
          let pinst =
            match Hashtbl.find_opt sx.insts path with
            | Some r -> r
            | None -> (
                match place sx ~path ~dims:[] ~port:None sh with
                | Pinst r -> r
                | _ -> raise (Fallback "function call did not place"))
          in
          use_inst sx guard pinst;
          connect_ports sx env ~guard ~loc pinst [] args ~skip_result:true;
          let rsup =
            match List.find_opt (fun (n, _, _) -> n = "$result") pinst.r_ports
            with
            | Some (_, _, p) ->
                List.map (fun (s, ex) -> (s, first_pt ex)) (pleaves p [])
            | None -> []
          in
          let argsup = union_sup (List.map (eval_expr sx env ~guard) args) in
          { e_sup = rsup @ argsup.e_sup; e_undef = argsup.e_undef;
            e_def = argsup.e_def; e_guard = None }
      | _ -> raise (Fallback (Printf.sprintf "'%s' is not callable" id.Ast.id)))
  | _ ->
      raise (Fallback (Printf.sprintf "unresolved call '%s'" id.Ast.id))

(* connect actuals to the formals of an instance: IN formals are driven
   by the actuals; OUT/INOUT formals drive the actual places (pending
   until the child's contract is known) *)
and connect_ports sx env ~guard ~loc (r : iref) (inst_idx : idx list) actuals
    ~skip_result =
  let formals =
    List.filter (fun (n, _, _) -> not (skip_result && n = "$result")) r.r_ports
  in
  if List.length formals <> List.length actuals then
    raise
      (Fallback
         (Printf.sprintf "connection arity: %d actuals for %d ports"
            (List.length actuals) (List.length formals)));
  List.iter2
    (fun (pname, mode, pshape) actual ->
      match mode with
      | C.In ->
          let er = eval_expr sx env ~guard actual in
          List.iter
            (fun (s, extra) ->
              let idxs = inst_idx @ extra in
              add_driver sx s
                { d_guard = guard; d_idx = idxs; d_vars = sx.loop_vars;
                  d_loc = loc;
                  d_desc = Printf.sprintf "connection to %s.%s" r.r_path pname;
                  d_definite = sx.definite_ctx && er.e_def;
                  d_undef = er.e_undef;
                  d_srcs = List.map fst er.e_sup; d_dims = [] };
              List.iter
                (fun (src, slin) ->
                  add_edge sx ~src ~dst:s
                    ~shift:(shift_of sx (first_pt idxs) slin))
                er.e_sup)
            (pleaves pshape [])
      | C.Out | C.Inout -> (
          match actual with
          | Ast.Eref aref ->
              let rr = resolve_ref sx env aref in
              (match rr.rr_crossed with
              | Some (cr, _, _) -> use_inst sx guard cr
              | None -> ());
              if rr.rr_varidx then ();
              List.iter
                (fun (s, extra) ->
                  sx.pendings <-
                    { p_inst = r.r_path; p_port = pname; p_guard = guard;
                      p_target = s; p_idx = rr.rr_idx @ extra;
                      p_vars = sx.loop_vars; p_loc = loc;
                      p_definite = sx.definite_ctx }
                    :: sx.pendings;
                  (* the child's port reaches the actual combinationally *)
                  List.iter
                    (fun (ps, pex) ->
                      add_edge sx ~src:ps ~dst:s
                        ~shift:
                          (shift_of sx
                             (first_pt (rr.rr_idx @ extra))
                             (first_pt (inst_idx @ pex))))
                    (pleaves pshape []))
                (leaves rr)
          | _ -> raise (Fallback "OUT connection actual is not a signal")))
    formals actuals

and shift_of sx dst src =
  match (dst, src) with
  | Some a, Some b -> (
      let d = C.Lin.sub a b in
      match C.Lin.const_val d with
      | Some k -> Some k
      | None -> ( match C.singleton (iv_of_lin sx d) with Some k -> Some k | None -> None))
  | None, None -> Some 0
  | _ -> None

and add_driver sx slotid d =
  let dims = (slot sx slotid).s_dims in
  let s = slot sx (uf_find sx slotid) in
  s.s_drivers <- { d with d_dims = dims } :: s.s_drivers

(* ------------------------------------------------------------------ *)
(* Statement walk                                                       *)
(* ------------------------------------------------------------------ *)

let when_truth sx env (cond : Ast.const_expr) : C.truth =
  match cond with
  | Ast.Crel (rel, a, b) -> crel_truth sx env rel a b
  | e -> (
      try
        match C.singleton (ceval sx env e).av_iv with
        | Some 0 -> C.False
        | Some _ -> C.True
        | None -> C.Unknown
      with Fallback _ -> C.Unknown)

let refine_when sx env ~negated (cond : Ast.const_expr) : unit -> unit =
  match cond with
  | Ast.Crel (rel, a, b) -> refine_by_rel sx env ~negated rel a b
  | _ -> fun () -> ()

let rec walk sx env ~guard stmts = List.iter (walk_stmt sx env ~guard) stmts

and walk_stmt sx env ~guard (st : Ast.stmt) =
  try walk_stmt_raw sx env ~guard st
  with Fallback reason ->
    (* the statement's effects are dropped; the type can no longer be
       proven anything, which the fallback records *)
    fallback_note sx
      (Printf.sprintf "%s (at %s)" reason
         (Fmt.str "%a" Loc.pp (Ast.stmt_loc st)))

and walk_stmt_raw sx env ~guard (st : Ast.stmt) =
  match st with
  | Ast.Sparallel (stmts, _) | Ast.Ssequential (stmts, _) ->
      walk sx env ~guard stmts
  | Ast.Sassign (lhs, rhs, loc) ->
      let er = eval_expr sx env ~guard rhs in
      drive_ref sx env ~guard ~loc ~desc:"assignment" er lhs
  | Ast.Sresult (rhs, loc) -> (
      let er = eval_expr sx env ~guard rhs in
      match lookup env "$result" with
      | Some (Vsig ps) ->
          drive_place sx ~guard ~loc ~desc:"RESULT" er
            { rr_base = ps; rr_idx = []; rr_crossed = None; rr_varidx = false }
      | _ -> raise (Fallback "RESULT outside a function component"))
  | Ast.Salias (lhs, rhs, loc) -> (
      match rhs with
      | Ast.Eref rref_ast ->
          let a = resolve_ref sx env lhs and b = resolve_ref sx env rref_ast in
          (match a.rr_crossed with
          | Some (r, _, _) -> use_inst sx guard r
          | None -> ());
          (match b.rr_crossed with
          | Some (r, _, _) -> use_inst sx guard r
          | None -> ());
          let la = leaves a and lb = leaves b in
          let smear_all l = List.iter (fun (s, _) -> smear sx s) l in
          if List.length la = List.length lb then begin
            List.iter2
              (fun (sa, _) (sb, _) ->
                uf_union sx sa sb;
                (* partial or iteration-dependent aliasing smears the
                   class: index disjointness no longer separates
                   electrical nets *)
                if
                  a.rr_varidx || b.rr_varidx
                  || a.rr_idx <> [] || b.rr_idx <> []
                then smear sx sa)
              la lb;
            ignore loc
          end
          else begin
            (* shape mismatch: merge everything, conservatively smeared *)
            List.iter (fun (sa, _) -> List.iter (fun (sb, _) ->
                uf_union sx sa sb) lb) la;
            smear_all la; smear_all lb
          end
      | _ -> raise (Fallback "alias right-hand side is not a signal"))
  | Ast.Sconnect (sref, actuals, loc) -> (
      let rr = resolve_ref sx env sref in
      match rr.rr_base with
      | Pinst r ->
          use_inst sx guard r;
          connect_ports sx env ~guard ~loc r rr.rr_idx actuals
            ~skip_result:false
      | _ -> raise (Fallback "connection target is not an instance"))
  | Ast.Sfor (h, _seq, stmts, _loc) -> (
      let vfrom = ceval sx env h.Ast.ffrom and vto = ceval sx env h.Ast.fto in
      let lo, hi =
        match h.Ast.fdir with
        | Ast.To -> (vfrom, vto)
        | Ast.Downto -> (vto, vfrom)
      in
      match C.cmp_le lo.av_iv hi.av_iv with
      | C.False -> () (* definitely empty loop *)
      | truth ->
          let iv =
            C.range (C.lo_of lo.av_iv) (C.hi_of hi.av_iv)
          in
          let v = fresh_term sx ("for:" ^ h.Ast.fvar.Ast.id) (Tbase (ref iv)) in
          let env' =
            bind env h.Ast.fvar.Ast.id
              (Vnum { av_lin = C.Lin.term v; av_iv = iv })
          in
          let saved = sx.definite_ctx in
          if truth <> C.True then sx.definite_ctx <- false;
          sx.loop_vars <- (v, lo.av_lin, hi.av_lin) :: sx.loop_vars;
          walk sx env' ~guard stmts;
          sx.loop_vars <- List.tl sx.loop_vars;
          sx.definite_ctx <- saved)
  | Ast.Swhen (arms, otherwise, loc) ->
      let saved_def = sx.definite_ctx in
      let rec go prefix undos = function
        | [] ->
            walk sx env ~guard:(L.band [ guard; prefix ]) otherwise;
            List.iter (fun u -> u ()) undos
        | (cond, stmts) :: rest -> (
            match when_truth sx env cond with
            | C.True ->
                walk sx env ~guard:(L.band [ guard; prefix ]) stmts;
                List.iter (fun u -> u ()) undos
            | C.False ->
                let u = refine_when sx env ~negated:true cond in
                go prefix (u :: undos) rest
            | C.Unknown ->
                sx.definite_ctx <- false;
                let w =
                  fresh_atom sx Aparam
                    (Fmt.str "WHEN arm at %a" Loc.pp loc)
                in
                let u = refine_when sx env ~negated:false cond in
                walk sx env
                  ~guard:(L.band [ guard; prefix; L.Bvar w ])
                  stmts;
                u ();
                let u' = refine_when sx env ~negated:true cond in
                go (L.band [ prefix; L.bnot (L.Bvar w) ]) (u' :: undos) rest)
      in
      go L.Btrue [] arms;
      sx.definite_ctx <- saved_def
  | Ast.Sif (arms, els, _loc) ->
      let rec go prefix xsup = function
        | [] -> walk_guarded sx env ~guard:(L.band [ guard; prefix ]) ~xsup els
        | (cond, stmts) :: rest ->
            let er = eval_expr sx env ~guard cond in
            let g =
              match er.e_guard with
              | Some g -> g
              | None -> L.Bvar (fresh_atom sx Aopq "IF condition")
            in
            let xsup = er.e_sup @ xsup in
            walk_guarded sx env
              ~guard:(L.band [ guard; prefix; g ])
              ~xsup stmts;
            go (L.band [ prefix; L.bnot g ]) xsup rest
      in
      go L.Btrue [] arms
  | Ast.Swith (sref, stmts, _loc) -> (
      let rr = resolve_ref sx env sref in
      (match rr.rr_crossed with
      | Some (r, _, _) -> use_inst sx guard r
      | None -> ());
      match rr.rr_idx with
      | [] ->
          let path =
            match sref with
            | Ast.Sig (id, _) -> id.Ast.id
            | Ast.Star _ -> "*"
          in
          sx.with_stack <- (rr.rr_base, path) :: sx.with_stack;
          walk sx env ~guard stmts;
          sx.with_stack <- List.tl sx.with_stack
      | _ ->
          (* WITH an indexed prefix: resolution below would lose the
             index; conservatively fall back *)
          raise (Fallback "WITH over an indexed reference"))

(* IF bodies: the condition's support slots feed every driver inside *)
and walk_guarded sx env ~guard ~xsup stmts =
  match xsup with
  | [] -> walk sx env ~guard stmts
  | _ ->
      let saved = sx.if_sup in
      sx.if_sup <- xsup @ sx.if_sup;
      walk sx env ~guard stmts;
      sx.if_sup <- saved

(* drive every leaf slot the reference denotes *)
and drive_ref sx env ~guard ~loc ~desc er lhs =
  let rr = resolve_ref sx env lhs in
  (match rr.rr_crossed with
  | Some (r, _, _) -> use_inst sx guard r
  | None -> ());
  drive_place sx ~guard ~loc ~desc er rr

and drive_place sx ~guard ~loc ~desc er rr =
  let sup = er.e_sup @ sx.if_sup in
  List.iter
    (fun (s, extra) ->
      let idxs = rr.rr_idx @ extra in
      add_driver sx s
        { d_guard = guard; d_idx = idxs; d_vars = sx.loop_vars; d_loc = loc;
          d_desc = desc; d_definite = sx.definite_ctx && er.e_def;
          d_undef = er.e_undef; d_srcs = List.map fst sup; d_dims = [] };
      List.iter
        (fun (src, slin) ->
          add_edge sx ~src ~dst:s ~shift:(shift_of sx (first_pt idxs) slin))
        sup)
    (leaves rr)

(* ------------------------------------------------------------------ *)
(* Context construction and declaration processing                      *)
(* ------------------------------------------------------------------ *)

let mk_sctx g ~tname ~key ~concrete =
  { g; s_tname = tname; s_key = key; s_concrete = concrete;
    slot_tbl = Hashtbl.create 64; n_slots = 0; edges = []; undef_edges = [];
    insts = Hashtbl.create 8; pendings = []; n_atoms = 0;
    atom_kinds = Hashtbl.create 16; atom_descs = Hashtbl.create 16;
    atom_share = Hashtbl.create 16; loop_vars = []; with_stack = [];
    if_sup = []; definite_ctx = true; s_fallbacks = []; s_findings = [] }

(* process a declaration list into an environment; local types bind
   mutually-recursively (the shared [td_env] is patched afterwards) *)
let process_decls sx env (decls : Ast.decl list) =
  List.fold_left
    (fun env d ->
      try
        match d with
        | Ast.Dconst defs ->
            List.fold_left
              (fun env ((id : Ast.ident), k) ->
                match k with
                | Ast.Knum e -> bind env id.Ast.id (Vnum (ceval sx env e))
                | Ast.Ksig sc -> bind env id.Ast.id (Vsigc sc))
              env defs
        | Ast.Dtype defs ->
            let tds =
              List.map
                (fun (td : Ast.type_def) ->
                  ( td.Ast.tname.Ast.id,
                    { td_formals =
                        List.map (fun (i : Ast.ident) -> i.Ast.id)
                          td.Ast.tformals;
                      td_ty = td.Ast.tty; td_env = env;
                      td_scope = sx.s_key } ))
                defs
            in
            let env' =
              List.fold_left
                (fun env (n, td) -> bind env n (Vtype td))
                env tds
            in
            (* a group's types may reference each other *)
            List.iter (fun (_, td) -> td.td_env <- env') tds;
            env'
        | Ast.Dsignal defs ->
            List.fold_left
              (fun env ((names : Ast.ident list), ty) ->
                try
                  let sh = resolve_ty sx env 0 ty in
                  List.fold_left
                    (fun env (n : Ast.ident) ->
                      bind env n.Ast.id
                        (Vsig (place sx ~path:n.Ast.id ~dims:[] ~port:None sh)))
                    env names
                with Fallback reason ->
                  fallback_note sx reason;
                  env)
              env defs
      with Fallback reason ->
        fallback_note sx reason;
        env)
    env decls

(* ------------------------------------------------------------------ *)
(* Composition: fold used child instances into the parent               *)
(* ------------------------------------------------------------------ *)

(* one fresh variable per enclosing array dimension: the pseudo-driver
   fires once per instance ("diagonal" indexing) *)
let diag_idx sx (dims : (C.Lin.t * C.Lin.t) list) =
  List.map
    (fun (lo, hi) ->
      let iv =
        C.range (C.lo_of (iv_of_lin sx lo)) (C.hi_of (iv_of_lin sx hi))
      in
      let t = fresh_term sx "inst" (Tbase (ref iv)) in
      (t, lo, hi))
    dims

let port_ps (r : iref) n =
  List.find_map (fun (pn, _, ps) -> if pn = n then Some ps else None) r.r_ports

(* [summarize_child] is the tied-back knot to the memoized driver *)
let compose sx (summarize_child : comp -> C.t) =
  let child_contracts : (string, C.t) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ (r : iref) ->
      if r.r_used <> L.Bfalse then
        if r.r_reg then begin
          (* REG: out always driven and sequential, UNDEF at power-up
             unless initialized; in->out is not a combinational edge,
             but UNDEF does cross the clock boundary *)
          (match port_ps r "out" with
          | Some ps ->
              let vars = diag_idx sx r.r_dims in
              let idxs = List.map (fun (t, _, _) -> Ipt (C.Lin.term t)) vars in
              List.iter
                (fun (sid, extra) ->
                  let sl = slot sx (uf_find sx sid) in
                  sl.s_seq <- true;
                  if not r.r_reg_init then sl.s_undef <- true;
                  add_driver sx sid
                    { d_guard = r.r_used; d_idx = idxs @ extra; d_vars = vars;
                      d_loc = r.r_loc;
                      d_desc =
                        Printf.sprintf "register output %s.out" r.r_path;
                      d_definite = r.r_used = L.Btrue;
                      d_undef = not r.r_reg_init; d_srcs = []; d_dims = [] })
                (pleaves ps [])
          | None -> ());
          match (port_ps r "in", port_ps r "out") with
          | Some pi, Some po ->
              List.iter
                (fun (si, _) ->
                  List.iter
                    (fun (so, _) ->
                      sx.undef_edges <-
                        (uf_find sx si, uf_find sx so) :: sx.undef_edges)
                    (pleaves po []))
                (pleaves pi [])
          | _ -> ()
        end
        else
          match r.r_comp with
          | None -> ()
          | Some h ->
              let c = summarize_child h in
              Hashtbl.replace child_contracts r.r_path c;
              (* the child's own OUT/INOUT drives appear as pseudo-drivers
                 on the instance's port slots *)
              let vars = diag_idx sx r.r_dims in
              let idxs = List.map (fun (t, _, _) -> Ipt (C.Lin.term t)) vars in
              List.iter
                (fun (pn, m, ps) ->
                  match (m, C.port c pn) with
                  | (C.Out | C.Inout), Some cp -> (
                      match cp.C.p_drive with
                      | C.Never -> ()
                      | dc ->
                          let guard =
                            match dc with
                            | C.Always -> r.r_used
                            | _ ->
                                L.band
                                  [ r.r_used;
                                    L.Bvar
                                      (fresh_atom sx Aopq
                                         (Printf.sprintf "%s may drive %s.%s"
                                            r.r_type r.r_path pn)) ]
                          in
                          List.iter
                            (fun (sid, extra) ->
                              let sl = slot sx (uf_find sx sid) in
                              if cp.C.p_undef then sl.s_undef <- true;
                              if cp.C.p_seq then sl.s_seq <- true;
                              add_driver sx sid
                                { d_guard = guard; d_idx = idxs @ extra;
                                  d_vars = vars;
                                  d_loc = r.r_loc;
                                  d_desc =
                                    Printf.sprintf
                                      "instance %s : %s drives its port %s"
                                      r.r_path r.r_type pn;
                                  d_definite =
                                    dc = C.Always && r.r_used = L.Btrue;
                                  d_undef = cp.C.p_undef; d_srcs = [];
                                  d_dims = [] })
                            (pleaves ps []))
                  | _ -> ())
                r.r_ports;
              (* the child's internal combinational reachability *)
              List.iter
                (fun (pi, po) ->
                  match (port_ps r pi, port_ps r po) with
                  | Some psi, Some pso ->
                      List.iter
                        (fun (si, _) ->
                          List.iter
                            (fun (so, _) ->
                              add_edge sx ~src:si ~dst:so ~shift:(Some 0))
                            (pleaves pso []))
                        (pleaves psi [])
                  | _ -> ())
                c.C.c_reach)
    sx.insts;
  (* pending drives: an OUT/INOUT connection actual is driven only if
     the child's contract says the port can drive *)
  List.iter
    (fun p ->
      match Hashtbl.find_opt sx.insts p.p_inst with
      | None -> ()
      | Some r when r.r_used = L.Bfalse -> ()
      | Some r ->
          let info =
            if r.r_reg then
              if p.p_port = "out" then
                Some (C.Always, not r.r_reg_init)
              else None
            else
              match Hashtbl.find_opt child_contracts p.p_inst with
              | None -> None
              | Some c -> (
                  match C.port c p.p_port with
                  | Some cp when cp.C.p_drive <> C.Never ->
                      Some (cp.C.p_drive, cp.C.p_undef)
                  | _ -> None)
          in
          match info with
          | None -> ()
          | Some (dc, undef) ->
              let guard =
                match dc with
                | C.Always -> p.p_guard
                | _ ->
                    L.band
                      [ p.p_guard;
                        L.Bvar
                          (fresh_atom sx Aopq
                             (Printf.sprintf "%s drives its port %s" p.p_inst
                                p.p_port)) ]
              in
              let srcs =
                match port_ps r p.p_port with
                | Some ps -> List.map fst (pleaves ps [])
                | None -> []
              in
              add_driver sx p.p_target
                { d_guard = guard; d_idx = p.p_idx; d_vars = p.p_vars;
                  d_loc = p.p_loc;
                  d_desc =
                    Printf.sprintf "output %s of instance %s" p.p_port p.p_inst;
                  d_definite = p.p_definite && dc = C.Always; d_undef = undef;
                  d_srcs = srcs; d_dims = [] })
    sx.pendings

(* ------------------------------------------------------------------ *)
(* UNDEF / sequential-dependence fixpoint                               *)
(* ------------------------------------------------------------------ *)

(* returns the class-membership table, reused by the later passes *)
let flow_fixpoint sx =
  let members : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun id _ ->
      let r = uf_find sx id in
      Hashtbl.replace members r
        (id :: (try Hashtbl.find members r with Not_found -> [])))
    sx.slot_tbl;
  (* seeds: a class that is never driven and is not an IN/INOUT port
     (the parent drives those) can only ever read UNDEF; a driver whose
     rhs mentions an UNDEF literal taints its target *)
  Hashtbl.iter
    (fun root ms ->
      let rs = slot sx root in
      let ds = List.concat_map (fun id -> (slot sx id).s_drivers) ms in
      let is_port =
        List.exists
          (fun id ->
            match (slot sx id).s_port with
            | Some (_, (C.In | C.Inout)) -> true
            | _ -> false)
          ms
      in
      if (not is_port) && ds = [] then rs.s_undef <- true;
      if List.exists (fun d -> d.d_undef) ds then rs.s_undef <- true)
    members;
  let cedges =
    List.map (fun (a, b, _) -> (uf_find sx a, uf_find sx b)) sx.edges
  in
  let uedges =
    cedges @ List.map (fun (a, b) -> (uf_find sx a, uf_find sx b)) sx.undef_edges
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (a, b) ->
        let sa = slot sx a and sb = slot sx b in
        if sa.s_undef && not sb.s_undef then begin
          sb.s_undef <- true;
          changed := true
        end)
      uedges;
    List.iter
      (fun (a, b) ->
        let sa = slot sx a and sb = slot sx b in
        if sa.s_seq && not sb.s_seq then begin
          sb.s_seq <- true;
          changed := true
        end)
      cedges
  done;
  members

(* ------------------------------------------------------------------ *)
(* Modular drive-conflict pass (Z401 / Z402)                            *)
(* ------------------------------------------------------------------ *)

(* demote to opaque every atom whose assignment proves nothing: WHEN
   parameters, opaque reads, and reads of UNDEF-capable slots (in the
   four-valued algebra an UNDEF guard fires neither branch, so a 0/1
   witness over it is not realizable) *)
let demote sx (e : L.bexp) =
  let rec go = function
    | L.Btrue -> L.Btrue
    | L.Bfalse -> L.Bfalse
    | L.Bvar v -> (
        match Hashtbl.find_opt sx.atom_kinds v with
        | Some (Aport s) when not (slot sx (uf_find sx s)).s_undef -> L.Bvar v
        | _ -> L.Bopq v)
    | L.Bopq v -> L.Bopq v
    | L.Bnot e -> L.bnot (go e)
    | L.Band l -> L.band (List.map go l)
    | L.Bor l -> L.bor (List.map go l)
    | L.Bxor (a, b) -> L.bxor (go a) (go b)
  in
  go e

type overlap = Osame | Odisjoint | Ounknown

(* can two drives of the same class touch the same element?  Decided
   dimension-wise on the swept symbolic index ranges: a difference that
   is a negative constant — or proves negative under the interval
   evaluation — separates them for every parameter value. *)
let idx_overlap sx (d1 : driver) (d2 : driver) =
  if List.length d1.d_idx <> List.length d2.d_idx then Ounknown
  else begin
    let same = ref true and disj = ref false in
    List.iter2
      (fun i1 i2 ->
        let bounds d = function
          | Ipt l ->
              let lo, hi = sweep_range d.d_vars l in
              Some (lo, hi)
          | Irg (a, b) ->
              let lo, _ = sweep_range d.d_vars a
              and _, hi = sweep_range d.d_vars b in
              Some (lo, hi)
          | Idyn -> None
        in
        (match (i1, i2) with
        | Ipt a, Ipt b
          when d1.d_vars = [] && d2.d_vars = []
               && C.Lin.const_val (C.Lin.sub a b) = Some 0 ->
            ()
        | _ -> same := false);
        match (bounds d1 i1, bounds d2 i2) with
        | Some (l1, h1), Some (l2, h2) ->
            if
              lin_definitely_neg sx (C.Lin.sub h1 l2)
              || lin_definitely_neg sx (C.Lin.sub h2 l1)
            then disj := true
        | _ -> ())
      d1.d_idx d2.d_idx;
    if !disj then Odisjoint else if !same then Osame else Ounknown
  end

(* a driver under FOR variables may collide with its own other
   iterations, unless its index is injective in every variable *)
let self_overlap sx (d : driver) =
  if d.d_vars = [] then None
  else
    let multi =
      (* some variable definitely takes at least two values *)
      List.filter
        (fun (_, lo, hi) -> lin_definitely_neg sx (C.Lin.sub lo hi))
        d.d_vars
    in
    let injective (v, _, _) =
      List.exists
        (function
          | Ipt l ->
              C.Lin.coeff_of v l <> 0
              && List.for_all
                   (fun (v2, _, _) -> v2 = v || not (C.Lin.mentions v2 l))
                   d.d_vars
          | Irg _ | Idyn -> false)
        d.d_idx
    in
    let definitely_single (_, lo, hi) = C.Lin.const_val (C.Lin.sub hi lo) = Some 0 in
    let suspects =
      List.filter (fun v -> not (injective v || definitely_single v)) d.d_vars
    in
    if suspects = [] then None
    else if d.d_idx = [] && multi <> [] then Some Osame
    else Some Ounknown

let describe_witness sx asg =
  String.concat ", "
    (List.map
       (fun (v, b) ->
         let d =
           match Hashtbl.find_opt sx.atom_descs v with
           | Some d -> d
           | None -> Printf.sprintf "atom %d" v
         in
         Printf.sprintf "%s = %s" d (if b then "1" else "0"))
       asg)

(* returns true when every class was proved exclusive *)
let conflict_pass sx members =
  let all_safe = ref true in
  let splits = ref 0 in
  Hashtbl.iter
    (fun root ms ->
      let rs = slot sx root in
      let ds = List.concat_map (fun id -> (slot sx id).s_drivers) ms in
      let n = List.length ds in
      let in_port =
        List.exists
          (fun id ->
            match (slot sx id).s_port with
            | Some (_, C.In) -> true
            | _ -> false)
          ms
      in
      if ds <> [] && in_port then begin
        (* an internally-driven IN port can collide with the parent's
           actual, which this summary cannot see *)
        all_safe := false;
        let d = List.hd ds in
        finding sx ~sev:Diag.Warning ~code:Diag.Code.modular_unproven
          ~loc:d.d_loc
          "IN port '%s' of %s is driven inside the type; a conflict with the \
           instantiating parent cannot be excluded modularly"
          rs.s_path sx.s_tname
      end
      else if n >= 1 then begin
        let arr = Array.of_list ds in
        let class_safe = ref true and warned = ref false and erred = ref false in
        let cross_slot = List.length ms > 1 in
        let warn (d : driver) detail =
          if not !warned then begin
            warned := true;
            finding sx ~sev:Diag.Warning ~code:Diag.Code.modular_unproven
              ~loc:d.d_loc
              "drivers of '%s' in %s not proved exclusive (%s); deferring to \
               the elaborated check"
              rs.s_path sx.s_tname detail
          end
        in
        let prove (d1 : driver) (d2 : driver) ov =
          let f = L.band [ demote sx d1.d_guard; demote sx d2.d_guard ] in
          match L.solve ~budget:conflict_budget ~splits f with
          | L.Unsat -> ()
          | L.Budget_out ->
              class_safe := false;
              warn d1 "solver budget exhausted"
          | L.Sat asg ->
              class_safe := false;
              let free_witness =
                List.for_all
                  (fun (v, _) ->
                    match Hashtbl.find_opt sx.atom_kinds v with
                    | Some (Aport s) -> not (slot sx (uf_find sx s)).s_undef
                    | _ -> false)
                  asg
              in
              if
                ov = Osame && sx.s_concrete && d1.d_definite && d2.d_definite
                && free_witness
                && not !erred
              then begin
                erred := true;
                finding sx ~sev:Diag.Error ~code:Diag.Code.modular_conflict
                  ~loc:d1.d_loc
                  "drive conflict on '%s' in %s: %s and %s can fire together%s"
                  rs.s_path sx.s_tname d1.d_desc d2.d_desc
                  (if asg = [] then ""
                   else " when " ^ describe_witness sx asg)
              end
              else
                warn d1
                  (Printf.sprintf "%s vs %s" d1.d_desc d2.d_desc)
        in
        for i = 0 to n - 1 do
          for j = i to n - 1 do
            if i = j then (
              match self_overlap sx arr.(i) with
              | None -> ()
              | Some ov -> prove arr.(i) arr.(i) ov)
            else begin
              let ov =
                if rs.s_smeared then Ounknown
                else if cross_slot then
                  if
                    arr.(i).d_idx = [] && arr.(j).d_idx = []
                    && arr.(i).d_dims = [] && arr.(j).d_dims = []
                  then Osame
                  else Ounknown
                else idx_overlap sx arr.(i) arr.(j)
              in
              match ov with
              | Odisjoint -> ()
              | ov -> prove arr.(i) arr.(j) ov
            end
          done
        done;
        if not !class_safe then all_safe := false
      end)
    members;
  !all_safe

(* ------------------------------------------------------------------ *)
(* Type-level combinational-cycle pass (Z403)                           *)
(* ------------------------------------------------------------------ *)

(* Registers never contribute a combinational edge, so any cycle among
   the slot classes is a combinational loop — except pure systolic
   chains, whose every cycle has a nonzero index shift (c[i].in from
   c[i-1].out loops back to a *different* element). *)
let cycle_pass sx =
  let edges =
    List.sort_uniq compare
      (List.filter_map
         (fun (a, b, sh) ->
           let a = uf_find sx a and b = uf_find sx b in
           Some (a, b, sh))
         sx.edges)
  in
  let adj : (int, (int * int option) list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (a, b, sh) ->
      Hashtbl.replace adj a
        ((b, sh) :: (try Hashtbl.find adj a with Not_found -> [])))
    edges;
  let succs v = try Hashtbl.find adj v with Not_found -> [] in
  (* Tarjan's SCC *)
  let index = Hashtbl.create 16 and low = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stk = ref [] and counter = ref 0 and sccs = ref [] in
  let rec strong v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace low v !counter;
    incr counter;
    stk := v :: !stk;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun (w, _) ->
        if not (Hashtbl.mem index w) then begin
          strong w;
          Hashtbl.replace low v
            (min (Hashtbl.find low v) (Hashtbl.find low w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace low v
            (min (Hashtbl.find low v) (Hashtbl.find index w)))
      (succs v);
    if Hashtbl.find low v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stk with
        | w :: rest ->
            stk := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      sccs := pop [] :: !sccs
    end
  in
  Hashtbl.iter (fun a _ -> if not (Hashtbl.mem index a) then strong a) adj;
  List.iter
    (fun (_, b, _) -> if not (Hashtbl.mem index b) then strong b)
    edges;
  (* does an SCC contain a zero-shift cycle?  Bounded search in the
     (node, accumulated shift) product graph. *)
  let max_shift = 64 and max_states = 4096 in
  let zero_cycle scc =
    let inside = Hashtbl.create 8 in
    List.iter (fun v -> Hashtbl.replace inside v ()) scc;
    let in_edges v =
      List.filter (fun (w, _) -> Hashtbl.mem inside w) (succs v)
    in
    let cyclic = List.length scc > 1 || List.exists (fun (w, _) -> w = List.hd scc) (succs (List.hd scc)) in
    if not cyclic then false
    else if
      List.exists
        (fun v -> List.exists (fun (_, sh) -> sh = None) (in_edges v))
        scc
    then true (* an unlabelled edge: assume the worst *)
    else
      let found = ref false and states = ref 0 in
      let start = List.hd scc in
      let seen = Hashtbl.create 64 in
      let rec dfs v acc =
        if (not !found) && !states < max_states then
          List.iter
            (fun (w, sh) ->
              let sh = match sh with Some s -> s | None -> 0 in
              let acc' = acc + sh in
              if w = start && acc' = 0 then found := true
              else if abs acc' <= max_shift && not (Hashtbl.mem seen (w, acc'))
              then begin
                Hashtbl.replace seen (w, acc') ();
                incr states;
                dfs w acc'
              end)
            (in_edges v)
      in
      dfs start 0;
      !found || !states >= max_states
  in
  let cycle_free = ref true in
  List.iter
    (fun scc ->
      let self_loop v = List.exists (fun (w, _) -> w = v) (succs v) in
      let cyclic =
        match scc with [ v ] -> self_loop v | _ :: _ :: _ -> true | [] -> false
      in
      if cyclic && zero_cycle scc then begin
        cycle_free := false;
        let names =
          List.filteri (fun i _ -> i < 4) scc
          |> List.map (fun v -> "'" ^ (slot sx v).s_path ^ "'")
        in
        finding sx ~sev:Diag.Warning ~code:Diag.Code.modular_cycle
          ~loc:Loc.dummy
          "combinational cycle in %s through %s%s — registers are the only \
           cycle breakers"
          sx.s_tname
          (String.concat ", " names)
          (if List.length scc > 4 then
             Printf.sprintf " (and %d more)" (List.length scc - 4)
           else "")
      end)
    !sccs;
  !cycle_free

(* ------------------------------------------------------------------ *)
(* Contract assembly                                                    *)
(* ------------------------------------------------------------------ *)

let assemble sx ~sigs ~placed ~members ~conflict_safe ~cycle_free : C.t =
  let drivers_of_class root =
    let ms = try Hashtbl.find members root with Not_found -> [ root ] in
    List.concat_map (fun id -> (slot sx id).s_drivers) ms
  in
  (* does one driver write the slot's every element? *)
  let covers_full (d : driver) =
    List.length d.d_idx = List.length d.d_dims
    && List.for_all2
         (fun i (lo, hi) ->
           match i with
           | Irg (a, b) -> C.Lin.equal a lo && C.Lin.equal b hi
           | Ipt _ | Idyn -> false)
         d.d_idx d.d_dims
  in
  let class_always root =
    let ds = drivers_of_class root in
    List.exists
      (fun d -> d.d_guard = L.Btrue && d.d_definite && covers_full d)
      ds
    ||
    let cov =
      List.filter_map
        (fun d ->
          if covers_full d && d.d_definite then Some d.d_guard else None)
        ds
    in
    cov <> []
    &&
    match L.solve ~budget:256 ~splits:(ref 0) (L.bnot (L.bor cov)) with
    | L.Unsat -> true (* the covering guards form a tautology *)
    | _ -> false
  in
  let ports =
    List.map
      (fun (pn, m, ps) ->
        let ls = pleaves ps [] in
        let roots =
          List.sort_uniq compare (List.map (fun (s, _) -> uf_find sx s) ls)
        in
        let ds = List.concat_map drivers_of_class roots in
        let drive =
          if ds = [] then C.Never
          else if roots <> [] && List.for_all class_always roots then C.Always
          else begin
            let sup = ref [] in
            let add s = if not (List.mem s !sup) then sup := s :: !sup in
            List.iter
              (fun (d : driver) ->
                ignore
                  (L.exists_var
                     (fun v _ ->
                       (match Hashtbl.find_opt sx.atom_kinds v with
                       | Some (Aport sid) -> (
                           let r = uf_find sx sid in
                           let ms =
                             try Hashtbl.find members r with Not_found -> [ r ]
                           in
                           match
                             List.find_map
                               (fun id ->
                                 match (slot sx id).s_port with
                                 | Some (n, (C.In | C.Inout)) -> Some n
                                 | _ -> None)
                               ms
                           with
                           | Some n -> add n
                           | None -> add "<internal>")
                       | Some Aparam -> add "<param>"
                       | _ -> add "<opaque>");
                       false)
                     d.d_guard))
              ds;
            C.Cond (List.sort compare !sup)
          end
        in
        let undef =
          List.exists (fun (s, _) -> (slot sx (uf_find sx s)).s_undef) ls
        in
        let seq =
          List.exists (fun (s, _) -> (slot sx (uf_find sx s)).s_seq) ls
        in
        { C.p_name = pn; p_mode = m; p_drive = drive; p_undef = undef;
          p_seq = seq })
      placed
  in
  (* class-level combinational reachability, in-ports to out-ports *)
  let cadj : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (a, b, _) ->
      let a = uf_find sx a and b = uf_find sx b in
      Hashtbl.replace cadj a
        (b :: (try Hashtbl.find cadj a with Not_found -> [])))
    sx.edges;
  let classes_of ps =
    List.sort_uniq compare (List.map (fun (s, _) -> uf_find sx s) (pleaves ps []))
  in
  let reach_from roots =
    let seen = Hashtbl.create 16 in
    let rec go v =
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.replace seen v ();
        List.iter go (try Hashtbl.find cadj v with Not_found -> [])
      end
    in
    List.iter go roots;
    seen
  in
  let reach =
    List.concat_map
      (fun (pi, mi, psi) ->
        if mi = C.Out then []
        else
          let seen = reach_from (classes_of psi) in
          List.filter_map
            (fun (po, mo, pso) ->
              if po = pi || mo = C.In then None
              else if List.exists (Hashtbl.mem seen) (classes_of pso) then
                Some (pi, po)
              else None)
            placed)
      placed
  in
  { C.c_type = sx.s_tname; c_params = sigs; c_ports = ports;
    c_reach = List.sort_uniq compare reach; c_conflict_safe = conflict_safe;
    c_cycle_free = cycle_free; c_fallback = List.sort compare sx.s_fallbacks }

(* ------------------------------------------------------------------ *)
(* The memoized, cached, fixpointed summarization driver                *)
(* ------------------------------------------------------------------ *)

let note_fallbacks g name reasons =
  List.iter
    (fun reason ->
      if not (List.mem (name, reason) !(g.g_fallbacks)) then
        g.g_fallbacks := (name, reason) :: !(g.g_fallbacks))
    reasons

(* record a finished (or cached, or capped) summary against the
   name-keyed proof tables: one unsafe signature disproves the type *)
let note_result g name (c : C.t) =
  let upd tbl ok =
    let prev = try Hashtbl.find tbl name with Not_found -> true in
    Hashtbl.replace tbl name (prev && ok)
  in
  upd g.proven_conflict (c.C.c_conflict_safe && c.C.c_fallback = []);
  upd g.proven_cycle (c.C.c_cycle_free && c.C.c_fallback = []);
  note_fallbacks g name c.C.c_fallback;
  g.contracts_acc <- (name, c) :: g.contracts_acc

let rec summarize (g : gctx) (h : comp) : C.t =
  let probe = mk_sctx g ~tname:h.h_name ~key:"?" ~concrete:false in
  let sigs = sig_of_args probe h.h_args in
  let key = summarize_key h sigs in
  let ports = List.map (fun (pn, m, _) -> (pn, m)) h.h_ports in
  match Hashtbl.find_opt g.memo key with
  | Some (Edone c) -> c
  | Some (Ework r) ->
      (* a recursive use: consume the current iterate *)
      g.pending_deps <- key :: g.pending_deps;
      !r
  | None -> (
      Hashtbl.replace g.types_seen h.h_name ();
      if List.length g.stack >= max_stack_depth || g.summaries >= max_summaries
      then begin
        let reason =
          if List.length g.stack >= max_stack_depth then
            "recursion depth exceeded"
          else "summary budget exceeded"
        in
        let c = C.top ~type_name:h.h_name ~params:sigs ~ports ~reason in
        g.g_findings <-
          { Diag.severity = Diag.Warning; kind = Diag.Lint_error;
            code = Some Diag.Code.modular_recursion; loc = Loc.dummy;
            message =
              Printf.sprintf
                "summarizing %s(%s): %s — the parameter recursion may not \
                 be well-founded; falling back to elaboration"
                h.h_name sigs reason }
          :: g.g_findings;
        note_result g h.h_name c;
        c
      end
      else
        let ckey =
          Option.map
            (fun _ ->
              C.Cache.key ~digest:g.digest ~type_name:h.h_name ~params:key)
            g.cache_dir
        in
        let cached =
          match (g.cache_dir, ckey) with
          | Some dir, Some ck -> C.Cache.load ~dir ~key:ck
          | _ -> None
        in
        match cached with
        | Some pl ->
            g.cache_hits <- g.cache_hits + 1;
            Hashtbl.replace g.memo key (Edone pl.C.Cache.pl_contract);
            g.g_findings <-
              List.rev pl.C.Cache.pl_findings @ g.g_findings;
            note_result g h.h_name pl.C.Cache.pl_contract;
            pl.C.Cache.pl_contract
        | None ->
            let r = ref (C.bottom ~type_name:h.h_name ~params:sigs ~ports) in
            Hashtbl.replace g.memo key (Ework r);
            g.stack <- key :: g.stack;
            let saved = g.pending_deps in
            let concrete =
              List.for_all
                (fun (a : aval) ->
                  C.singleton (iv_of_lin probe a.av_lin) <> None)
                h.h_args
            in
            let finish = ref None in
            let iters = ref 0 in
            (try
               while !finish = None do
                 incr iters;
                 g.pending_deps <- [];
                 let c, findings, fbs = summarize_once g h key sigs concrete in
                 let deps = g.pending_deps in
                 if not (List.mem key deps) then
                   finish := Some (c, findings, fbs, deps)
                 else if c = !r then finish := Some (c, findings, fbs, deps)
                 else if !iters >= max_fixpoint_iters then begin
                   let reason = "summary fixpoint did not converge" in
                   let c = C.top ~type_name:h.h_name ~params:sigs ~ports ~reason in
                   finish := Some (c, findings, reason :: fbs, deps)
                 end
                 else r := c
               done
             with e ->
               g.stack <- List.tl g.stack;
               g.pending_deps <- saved;
               Hashtbl.remove g.memo key;
               raise e);
            g.stack <- List.tl g.stack;
            g.summaries <- g.summaries + 1;
            let c, findings, fbs, deps = Option.get !finish in
            let residual = List.filter (fun k -> k <> key) deps in
            g.pending_deps <- residual @ saved;
            note_fallbacks g h.h_name fbs;
            if residual = [] then begin
              Hashtbl.replace g.memo key (Edone c);
              g.g_findings <- List.rev findings @ g.g_findings;
              note_result g h.h_name c;
              match (g.cache_dir, ckey) with
              | Some dir, Some ck ->
                  C.Cache.store ~dir ~key:ck
                    { C.Cache.pl_contract = c; pl_findings = findings }
              | _ -> ()
            end
            else
              (* this summary consumed the iterate of a summarization
                 still in progress elsewhere on the stack: it is
                 provisional, and the enclosing fixpoint recomputes it *)
              Hashtbl.remove g.memo key;
            c)

and summarize_once g (h : comp) key sigs concrete :
    C.t * Diag.t list * string list =
  let sx = mk_sctx g ~tname:h.h_name ~key ~concrete in
  try
    (* the signature's intervals become refinable terms for the formals *)
    let env =
      List.fold_left2
        (fun env f (a : aval) ->
          let iv = iv_of_lin sx a.av_lin in
          match C.singleton iv with
          | Some n ->
              bind env f (Vnum { av_lin = C.Lin.const n; av_iv = C.iconst n })
          | None ->
              let t =
                new_term sx
                  (Printf.sprintf "formal:%s:%s" key f)
                  (Tbase (ref iv))
              in
              bind env f (Vnum { av_lin = C.Lin.term t; av_iv = iv }))
        h.h_env h.h_formals h.h_args
    in
    (* re-resolve the ports in this environment, so their dimension
       expressions mention this summarization's formal terms *)
    let port_shapes =
      List.concat_map
        (fun (p : Ast.fparam) ->
          let m = mode_of_ast p.Ast.fmode in
          let sh = resolve_ty sx env 0 p.Ast.fty in
          List.map (fun (n : Ast.ident) -> (n.Ast.id, m, sh)) p.Ast.fnames)
        h.h_ast.Ast.cparams
    in
    let port_shapes =
      match h.h_ast.Ast.cresult with
      | Some rty -> port_shapes @ [ ("$result", C.Out, resolve_ty sx env 0 rty) ]
      | None -> port_shapes
    in
    let placed =
      List.map
        (fun (pn, m, sh) ->
          (pn, m, place sx ~path:pn ~dims:[] ~port:(Some (pn, m)) sh))
        port_shapes
    in
    let env =
      List.fold_left (fun env (pn, _, ps) -> bind env pn (Vsig ps)) env placed
    in
    (match h.h_ast.Ast.cbody with
    | None -> ()
    | Some body ->
        let env = process_decls sx env body.Ast.bdecls in
        walk sx env ~guard:L.Btrue body.Ast.bstmts);
    compose sx (summarize g);
    let members = flow_fixpoint sx in
    let conflict_safe = conflict_pass sx members in
    let cycle_free = cycle_pass sx in
    let c = assemble sx ~sigs ~placed ~members ~conflict_safe ~cycle_free in
    (c, List.rev sx.s_findings, sx.s_fallbacks)
  with Fallback reason ->
    let ports = List.map (fun (pn, m, _) -> (pn, m)) h.h_ports in
    ( C.top ~type_name:h.h_name ~params:sigs ~ports ~reason,
      List.rev sx.s_findings,
      reason :: sx.s_fallbacks )

(* ------------------------------------------------------------------ *)
(* Entry point                                                          *)
(* ------------------------------------------------------------------ *)

type result = {
  contracts : (string * Contract.t) list;
  findings : Diag.t list;
  proven_conflict_safe : string list;
  proven_cycle_free : string list;
  fallbacks : (string * string) list;
  types_analyzed : int;
  summaries_computed : int;
  cache_hits : int;
}

let analyze ?(symbolic = true) ?cache_dir ?src (prog : Ast.program) : result =
  let digest =
    C.Cache.source_digest
      (match src with Some s -> s | None -> Pretty.program_to_string prog)
  in
  let g =
    { terms = Hashtbl.create 64; term_defs = Hashtbl.create 64; n_terms = 0;
      memo = Hashtbl.create 16; stack = []; pending_deps = [];
      g_findings = []; summaries = 0; cache_hits = 0; contracts_acc = [];
      types_seen = Hashtbl.create 16; proven_conflict = Hashtbl.create 16;
      proven_cycle = Hashtbl.create 16; g_fallbacks = ref []; cache_dir;
      digest; symbolic }
  in
  let root = mk_sctx g ~tname:"<top>" ~key:"" ~concrete:true in
  let env = process_decls root { vals = [] } prog in
  (* the concrete pass: every top-level SIGNAL of component type
     exists, so its summary (at its concrete signature) is demanded *)
  Hashtbl.iter
    (fun _ (r : iref) -> if not r.r_reg then use_inst root L.Btrue r)
    root.insts;
  compose root (summarize g);
  (* the symbolic pass: each named component type at the fully
     unconstrained signature, proving its checks for all parameters *)
  if symbolic then
    List.iter
      (fun (d : Ast.decl) ->
        match d with
        | Ast.Dtype defs ->
            List.iter
              (fun (td : Ast.type_def) ->
                match td.Ast.tty with
                | Ast.Tcomponent (c, loc)
                  when c.Ast.cbody <> None || c.Ast.cresult <> None -> (
                    try
                      match lookup env td.Ast.tname.Ast.id with
                      | Some (Vtype tdb) ->
                          let formals =
                            List.map
                              (fun (f : Ast.ident) -> f.Ast.id)
                              td.Ast.tformals
                          in
                          let args =
                            List.map
                              (fun f ->
                                let t =
                                  new_term root
                                    (Printf.sprintf "formal:top:%s:%s"
                                       td.Ast.tname.Ast.id f)
                                    (Tbase (ref C.itop))
                                in
                                { av_lin = C.Lin.term t; av_iv = C.itop })
                              formals
                          in
                          let env' =
                            List.fold_left2
                              (fun e f a -> bind e f (Vnum a))
                              tdb.td_env formals args
                          in
                          (match
                             resolve_component root env' 0
                               ~name:td.Ast.tname.Ast.id ~scope:tdb.td_scope
                               ~formals ~args c loc
                           with
                          | Hcomp h -> ignore (summarize g h)
                          | _ -> ())
                      | _ -> ()
                    with Fallback reason ->
                      note_fallbacks g td.Ast.tname.Ast.id [ reason ])
                | _ -> ())
              defs
        | _ -> ())
      prog;
  let proven tbl =
    Hashtbl.fold (fun n ok acc -> if ok then n :: acc else acc) tbl []
    |> List.sort compare
  in
  let dedup ds =
    let seen = Hashtbl.create 16 in
    List.filter
      (fun (d : Diag.t) ->
        let k = (d.Diag.code, d.Diag.loc, d.Diag.message) in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.replace seen k ();
          true
        end)
      ds
  in
  {
    contracts = List.rev g.contracts_acc;
    findings = dedup (List.rev g.g_findings @ List.rev root.s_findings);
    proven_conflict_safe = proven g.proven_conflict;
    proven_cycle_free = proven g.proven_cycle;
    fallbacks = List.rev !(g.g_fallbacks);
    types_analyzed = Hashtbl.length g.types_seen;
    summaries_computed = g.summaries;
    cache_hits = g.cache_hits;
  }

let summary_line (r : result) =
  Printf.sprintf
    "%d component type(s), %d summar%s computed (%d cached); conflict-safe: \
     %s; cycle-free: %s%s"
    r.types_analyzed r.summaries_computed
    (if r.summaries_computed = 1 then "y" else "ies")
    r.cache_hits
    (if r.proven_conflict_safe = [] then "none"
     else String.concat " " r.proven_conflict_safe)
    (if r.proven_cycle_free = [] then "none"
     else String.concat " " r.proven_cycle_free)
    (if r.fallbacks = [] then ""
     else Printf.sprintf "; %d fallback(s)" (List.length r.fallbacks))
