(* Post-elaboration static checks (sections 4.1, 4.5, 4.7, 8):

   - single-assignment discipline per alias class: at most one
     unconditional driver, never both conditional and unconditional,
     no unconditional ':=' to an aliased boolean;
   - no combinational feedback: every cycle must pass through a REG;
   - the unused-port rule: once any port of an instance is used, all its
     other ports must be used, assigned or closed with '*';
   - SEQUENTIAL/PARALLEL ordering constraints must be compatible with the
     dataflow partial order;
   - undriven nets that are read (everything except testbench inputs and
     register outputs) get a warning: they read UNDEF forever. *)

open Zeus_base

type class_info = {
  mutable members : int list;
  mutable uncond : Netlist.driver list;
  mutable cond : Netlist.driver list;
}

let class_table nl =
  let tbl = Hashtbl.create 64 in
  let info key =
    match Hashtbl.find_opt tbl key with
    | Some i -> i
    | None ->
        let i = { members = []; uncond = []; cond = [] } in
        Hashtbl.add tbl key i;
        i
  in
  let n = Netlist.net_count nl in
  for id = 0 to n - 1 do
    let i = info (Netlist.canonical nl id) in
    i.members <- id :: i.members
  done;
  List.iter
    (fun (d : Netlist.driver) ->
      let i = info (Netlist.canonical nl d.Netlist.target) in
      match d.Netlist.guard with
      | None -> i.uncond <- d :: i.uncond
      | Some _ -> i.cond <- d :: i.cond)
    (Netlist.drivers nl);
  tbl

(* Dependency edges between canonical nets: src -> dst means the value of
   dst needs src.  REG breaks the cycle (no edge rout -> rin). *)
let dependency_graph nl =
  let n = Netlist.net_count nl in
  let adj = Array.make n [] in
  let add_edge src dst =
    match src with
    | Netlist.Sconst _ -> ()
    | Netlist.Snet s ->
        let s = Netlist.canonical nl s and d = Netlist.canonical nl dst in
        if s <> d then adj.(s) <- d :: adj.(s)
  in
  List.iter
    (fun (d : Netlist.driver) ->
      add_edge d.Netlist.source d.Netlist.target;
      Option.iter (fun g -> add_edge g d.Netlist.target) d.Netlist.guard)
    (Netlist.drivers nl);
  List.iter
    (fun (g : Netlist.gate) ->
      List.iter (fun i -> add_edge i g.Netlist.output) g.Netlist.inputs)
    (Netlist.gates nl);
  adj

(* --------------------------------------------------------------- *)

let check_assignment_discipline bag nl tbl =
  Hashtbl.iter
    (fun _key (i : class_info) ->
      let name id = (Netlist.net nl id).Netlist.name in
      (match i.uncond with
      | d1 :: d2 :: _ ->
          Diag.Bag.error bag Diag.Assign_error d2.Netlist.dloc
            "'%s' is unconditionally assigned more than once (also at %a) — \
             this could connect power to ground"
            (name d1.Netlist.target) Loc.pp d1.Netlist.dloc
      | _ -> ());
      (match (i.uncond, i.cond) with
      | d :: _, c :: _ ->
          Diag.Bag.error bag Diag.Assign_error c.Netlist.dloc
            "'%s' is assigned both conditionally and unconditionally \
             (unconditional assignment at %a)"
            (name d.Netlist.target) Loc.pp d.Netlist.dloc
      | _ -> ());
      (* boolean aliased with '==' must not also get an unconditional ':=' *)
      if List.length i.members > 1 then
        List.iter
          (fun (d : Netlist.driver) ->
            let net = Netlist.net nl d.Netlist.target in
            if net.Netlist.kind = Etype.KBool then
              Diag.Bag.error bag Diag.Assign_error d.Netlist.dloc
                "boolean '%s' is aliased with '==' and also unconditionally \
                 assigned with ':='"
                net.Netlist.name)
          i.uncond)
    tbl

let check_cycles bag nl adj =
  (* iterative DFS with colouring; report one representative cycle per
     strongly connected region we stumble into *)
  let n = Array.length adj in
  let colour = Array.make n 0 in
  (* 0 white, 1 grey, 2 black *)
  let parent = Array.make n (-1) in
  let reported = ref 0 in
  let report_cycle v u =
    (* cycle: u -> ... -> v -> u along parent links of v *)
    if !reported < 5 then begin
      incr reported;
      let rec collect acc x =
        if x = u || x = -1 then x :: acc else collect (x :: acc) parent.(x)
      in
      let path = collect [] v in
      let names =
        List.map (fun id -> (Netlist.net nl id).Netlist.name) (u :: List.tl path)
      in
      Diag.Bag.error bag Diag.Cycle_error (Netlist.net nl u).Netlist.loc
        "combinational feedback loop (no REG on the path): %s"
        (String.concat " -> " (names @ [ List.hd names ]))
    end
  in
  let rec dfs v =
    colour.(v) <- 1;
    List.iter
      (fun w ->
        if colour.(w) = 0 then begin
          parent.(w) <- v;
          dfs w
        end
        else if colour.(w) = 1 then report_cycle v w)
      adj.(v);
    colour.(v) <- 2
  in
  for v = 0 to n - 1 do
    if colour.(v) = 0 && Netlist.canonical nl v = v then dfs v
  done

let check_unused_ports bag nl _tbl =
  (* "used or assigned" means used by the *surrounding* component: only
     touches from a scope other than the instance itself count (the
     instance's own body always reads its IN and drives its OUT pins) *)
  let net_used iid id =
    let net = Netlist.net nl id in
    List.exists (fun scope -> scope <> iid) net.Netlist.touched
  in
  List.iter
    (fun (inst : Netlist.instance) ->
      if not inst.Netlist.is_function_call then begin
        let iid = inst.Netlist.iid in
        let port_used (_, _, nets) = List.exists (net_used iid) nets in
        let ports = inst.Netlist.iports in
        let used, unused = List.partition port_used ports in
        (* ports with zero bits (empty arrays) never count as unused *)
        let unused =
          List.filter (fun (_, _, nets) -> nets <> []) unused
        in
        if used <> [] && unused <> [] then
          Diag.Bag.error bag Diag.Port_error inst.Netlist.iloc
            "instance '%s' of '%s': port(s) %s neither used nor assigned — \
             close them explicitly with '*'"
            inst.Netlist.ipath inst.Netlist.itype
            (String.concat ", "
               (List.map (fun (n, _, _) -> "'" ^ n ^ "'") unused))
      end)
    (Netlist.instances nl)

let check_order_constraints bag nl adj =
  let n = Array.length adj in
  List.iter
    (fun (loc, before, after) ->
      (* the declared order says [before] executes first; it is wrong if
         something written by [after] is needed (transitively) by
         [before] *)
      let target = Array.make n false in
      List.iter (fun id -> target.(Netlist.canonical nl id) <- true) before;
      let visited = Array.make n false in
      let bad = ref None in
      let rec dfs v =
        if not visited.(v) && !bad = None then begin
          visited.(v) <- true;
          if target.(v) then bad := Some v
          else List.iter dfs adj.(v)
        end
      in
      List.iter
        (fun id ->
          let c = Netlist.canonical nl id in
          if target.(c) then () else List.iter dfs adj.(c))
        after;
      match !bad with
      | Some v ->
          Diag.Bag.error bag Diag.Order_error loc
            "SEQUENTIAL order is incompatible with the dataflow: '%s' is \
             computed from a later statement's result"
            (Netlist.net nl v).Netlist.name
      | None -> ())
    (Netlist.order_constraints nl)

let check_undriven bag nl tbl ~top_inputs =
  let reg_outs = Hashtbl.create 16 in
  List.iter
    (fun (r : Netlist.reg) ->
      Hashtbl.replace reg_outs (Netlist.canonical nl r.Netlist.rout) ())
    (Netlist.regs nl);
  (* gate outputs are produced by their gate, not by drivers *)
  List.iter
    (fun (g : Netlist.gate) ->
      Hashtbl.replace reg_outs (Netlist.canonical nl g.Netlist.output) ())
    (Netlist.gates nl);
  let inputs = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace inputs (Netlist.canonical nl id) ()) top_inputs;
  Hashtbl.iter
    (fun key (i : class_info) ->
      if
        i.uncond = [] && i.cond = []
        && (not (Hashtbl.mem reg_outs key))
        && not (Hashtbl.mem inputs key)
      then
        let read_members =
          List.filter
            (fun id -> (Netlist.net nl id).Netlist.reads > 0)
            i.members
        in
        (* prefer a member with a real source location to report at *)
        let located =
          List.filter
            (fun id -> not (Loc.is_dummy (Netlist.net nl id).Netlist.loc))
            read_members
        in
        match (located, read_members) with
        | id :: _, _ | [], id :: _ ->
            let net = Netlist.net nl id in
            Diag.Bag.warning bag ~code:Diag.Code.undriven_read
              Diag.Assign_error net.Netlist.loc
              "'%s' is read but never assigned — it reads UNDEF"
              net.Netlist.name
        | [], [] -> ())
    tbl

(* Top-level testbench inputs: IN/INOUT pins of root instances, plus CLK
   and RSET. *)
let top_input_nets (design : Elaborate.design) =
  let nl = design.Elaborate.netlist in
  let roots =
    List.filter
      (fun (i : Netlist.instance) ->
        not (String.contains i.Netlist.ipath '.'))
      (Netlist.instances nl)
  in
  let pins =
    List.concat_map
      (fun (i : Netlist.instance) ->
        List.concat_map
          (fun (_, m, nets) ->
            match m with
            | Etype.In | Etype.Inout -> nets
            | Etype.Out -> [])
          i.Netlist.iports)
      roots
  in
  design.Elaborate.clk_net :: design.Elaborate.rset_net :: pins

let run (design : Elaborate.design) =
  let bag = design.Elaborate.diags in
  let nl = design.Elaborate.netlist in
  let tbl = class_table nl in
  let adj = dependency_graph nl in
  check_assignment_discipline bag nl tbl;
  check_cycles bag nl adj;
  check_unused_ports bag nl tbl;
  check_order_constraints bag nl adj;
  check_undriven bag nl tbl ~top_inputs:(top_input_nets design);
  not (Diag.Bag.has_errors bag)
