(** The bounded sequential prover: k-cycle symbolic reachability over
    the elaborated netlist.

    PR 1's conflict prover ({!Lint}) is purely combinational: a net
    whose driver exclusivity depends on sequential state is demoted to
    [Needs_runtime_check] and every engine pays a per-cycle runtime
    check forever.  This module closes that gap with a bounded
    reachability analysis over register state:

    - {b Abstract reachability.}  Every register is tracked as the set
      of values it can hold (a four-valued mask, {!Lint.m_zero} etc.).
      A cycle's transfer function is the value-set dataflow of
      {!Lint.value_sets} made {e state-sensitive}: register outputs
      read the current state masks instead of the flow-insensitive
      union, and the pessimistic "two possible drivers ⇒ inject UNDEF"
      rule is refined by a per-state exclusivity check — each pair of
      drive conditions is re-proved with the bounded DPLL solver after
      substituting the state masks into the guard formulas (a register
      known to be [{0}] becomes [false]; a register that can read
      UNDEF is renamed to a {e fresh variable per occurrence}, which
      is the sound boolean over-approximation of Kleene evaluation:
      if every per-occurrence completion refutes the pair, no
      four-valued state can make both guards drive).  Iterating the
      transfer function with union-accumulation converges in at most
      4·R+1 steps to an over-approximation of every reachable state
      from power-up.

    - {b Upgrades.}  A [Needs_runtime_check] class whose producer
      pairs are all exclusive at the reachability fixpoint can never
      double-drive in any reachable state: it is upgraded to
      {!Lint.Safe_sequential}, and {!discharged} lets the compiled
      engine drop its per-cycle conflict-check ops.

    - {b Reset-coverage lints.}  A cycle-indexed trajectory from the
      fixpoint through a RSET pulse and [depth-1] idle cycles yields
      Z601 (a register can still hold UNDEF [depth] cycles after
      reset) and Z602 (power-up UNDEF escapes the reset cone into an
      observable net: stripping the registers' UNDEF bits removes the
      net's UNDEF, so the UNDEF is sequential in origin).

    - {b Concrete witnesses (Z603).}  For small acyclic designs
      without RANDOM, a breadth-first search over concrete register
      states (inputs enumerated over defined values) finds stimulus
      traces that actually trip the runtime multiple-drive check on an
      unproven net, reported with the full per-cycle poke list — the
      trace replays on every engine ({!Oracle} row O8 checks this).

    Everything here shares {!Lint}'s environment assumption: inputs
    are poked to {e defined} values.  A hostile stimulus driving
    UNDEF into a top input can defeat a [Safe]/[Safe_sequential]
    proof, which is why conflict-check discharge is opt-in
    ([zeusc sim --discharge]). *)

open Zeus_base

(** A concrete stimulus trace that trips the runtime multiple-drive
    check.  [w_trace.(c)] lists the pokes applied before cycle [c]
    (canonical net id, net name, value) — every enumerated input is
    poked every cycle, so the replay is deterministic. *)
type witness = {
  w_class : int;  (** canonical class of the conflicting net *)
  w_name : string;
  w_cycle : int;  (** 0-based cycle at which the conflict fires *)
  w_trace : (int * string * Logic.t) list array;
}

(** Per-register reachability facts, as value-set masks. *)
type reg_trace = {
  rt_name : string;  (** hierarchical register path *)
  rt_out : int;  (** canonical class of the register output *)
  rt_init : int;  (** power-up mask *)
  rt_fix : int;  (** every value reachable from power-up (fixpoint) *)
  rt_reset : int array;
      (** trajectory masks: index 0 is the pre-reset fixpoint, index
          [i] the state [i] cycles after the RSET pulse began (the
          pulse itself is cycle 1), up to index [depth] *)
}

type report = {
  sp_depth : int;
  sp_regs : reg_trace list;
  sp_upgraded : (int * string) list;
      (** classes upgraded to [Safe_sequential] (canonical id, name) *)
  sp_findings : Diag.t list;  (** Z601/Z602/Z603 *)
  sp_witnesses : witness list;
  sp_splits : int;  (** case splits spent by the per-state prover *)
  sp_lint : Lint.report;
      (** the underlying lint report with upgrades applied — verdicts
          for upgraded classes read [Safe_sequential] *)
}

val default_depth : int

(** [run design] proves what it can about the design's sequential
    behaviour.  [depth] (default {!default_depth}) bounds the reset
    trajectory and the concrete witness search; [budget] bounds the
    DPLL case splits per pair check (default {!Lint.default_budget});
    [lint] supplies an existing combinational report for the same
    design (it is re-run otherwise). *)
val run :
  ?depth:int -> ?budget:int -> ?lint:Lint.report -> Elaborate.design -> report

(** [discharged design report] — per canonical class, [true] when the
    class is statically proved conflict-free ([Safe] or
    [Safe_sequential]): the compiled engine may omit its runtime
    conflict-check ops under the defined-inputs environment
    assumption. *)
val discharged : Elaborate.design -> report -> bool array

(** A value-set mask as ["{0,1,U,Z}"] notation. *)
val mask_to_string : int -> string

(** One line: depth, registers, upgrades, findings, witnesses,
    splits. *)
val summary : report -> string

(** The schema version carried in the [version] member of
    {!json_of_report}. *)
val json_schema_version : int

(** The whole report as a JSON object with [version], [depth],
    [registers], [upgraded], [findings], [witnesses] and [summary]
    members. *)
val json_of_report : report -> string
