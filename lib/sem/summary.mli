(** Modular component-summary analysis.

    Computes, once per (component type, canonical parameter signature),
    a {!Contract.t} by abstract interpretation of the type's body over
    intervals ({!Contract.ival}) and symbolic linear index expressions
    ({!Contract.Lin}), composing the contracts of instantiated child
    types bottom-up — without elaborating the design.  Children are
    summarized lazily, mirroring the paper's section 4.2 rule that
    hardware is only generated if it is used.

    Three whole-program checks run on the summaries alone:

    - {b modular drive-conflict detection} (Z401/Z402): pairwise
      exclusivity of a slot's drivers, decided first by symbolic index
      disjointness ([output[i]] vs [output[i + n DIV 2]] differ by a
      negative constant for every [n]) and then by the bounded DPLL
      prover of {!Lint} on the composed guards;
    - {b type-level combinational-cycle detection} (Z403): registers
      are the only cycle breakers, proved for all parameter values of a
      recursive type by a reachability fixpoint with shift-labelled
      edges (a self-edge of strictly positive shift is a systolic
      chain, not a cycle);
    - {b symbolic parameter-range checking} (Z404/Z405/Z406): empty
      ARRAY ranges, out-of-bounds indexing, non-positive widths and
      non-well-founded recursion in WHEN chains, by interval abstract
      interpretation over the generic parameters, with a Z406 note when
      the intervals are too coarse and the check falls back to
      elaboration.

    Soundness direction: a type is only reported {e proven}
    (conflict-safe / cycle-free) when no construct forced a
    conservative fallback, so a "proven" verdict never contradicts the
    elaborated lint; warnings (Z402/Z403/Z406) may over-approximate. *)

type result = {
  contracts : (string * Contract.t) list;
      (** per component type, in analysis order; symbolic contracts when
          [symbolic], concrete ones otherwise *)
  findings : Zeus_base.Diag.t list;
  proven_conflict_safe : string list;
      (** type names whose every analysed signature was proved free of
          internal drive conflicts, with no fallback *)
  proven_cycle_free : string list;
  fallbacks : (string * string) list;  (** (type, reason) pairs *)
  types_analyzed : int;  (** distinct component types reached *)
  summaries_computed : int;  (** (type, signature) summaries built *)
  cache_hits : int;  (** summaries served from the on-disk cache *)
}

val analyze :
  ?symbolic:bool ->
  ?cache_dir:string ->
  ?src:string ->
  Zeus_lang.Ast.program ->
  result
(** [analyze prog] summarizes every top-level component type of [prog].

    [symbolic] (default [true]) additionally summarizes each type at
    the fully symbolic signature (every formal unconstrained), so the
    proofs quantify over {e all} parameter values; the concrete
    signatures reachable from the program's root SIGNAL declarations
    are always analysed.

    [cache_dir] enables the persistent summary cache: entries are keyed
    by the digest of the canonical pretty-printed source ([src] if
    given, else the pretty-printed [prog]), the type name and the
    canonical parameter signature. *)

val summary_line : result -> string
(** One-line statistics: types, summaries, cache hits, proofs. *)
