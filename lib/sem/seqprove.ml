(* The bounded sequential prover: k-cycle symbolic reachability over
   the elaborated netlist.

   The combinational prover (Lint pass 1) demotes any net whose driver
   exclusivity depends on register state to needs-runtime-check; the
   value-set pass is flow-insensitive, so a register that is *ever*
   multi-driven is assumed UNDEF-capable forever, which demotes every
   guard over it.  This module re-runs both with state sensitivity:

   - Registers are tracked as value-set masks (Lint.m_zero & co.), one
     per register, starting at the power-up value.  One abstract cycle
     evaluates the combinational masks with register outputs reading
     the current state (not the cross-cycle union), and the
     conflict-injects-UNDEF rule only fires when the class's producer
     pairs are not exclusive *in this state* — each pair is re-proved
     with the bounded DPLL solver after substituting the state masks
     into the guard formulas.  Substitution is the sound boolean
     over-approximation of the four-valued evaluation:
       {0}         |-> false
       {1}         |-> true
       {0,1}       |-> the shared variable (boolean case)
       contains U  |-> a fresh variable *per occurrence*
     The per-occurrence renaming is what makes UNSAT sound under
     Kleene semantics: whenever booleanize(eval4 g) is 1 or UNDEF
     (both of which drive), some per-occurrence boolean completion of
     the UNDEF leaves evaluates g to 1 — by induction, renamed
     occurrences are independent across subtrees.  So if every
     completion refutes g1 /\ g2, no reachable state makes both
     drivers fire.  Opaque leaves (combinational cycles, multi-driven
     guard nets) are renamed the same way, which is a further sound
     weakening.

   - Union-accumulating the transfer function converges in <= 4R+1
     iterations (masks only grow).  The fixpoint over-approximates
     every state reachable from power-up under defined inputs; a
     needs-runtime-check class whose pairs are exclusive at the
     fixpoint is upgraded to Safe_sequential and its runtime conflict
     check can be discharged (Compile consults [discharged]).

   - A cycle-indexed trajectory (RSET = {1} for one cycle, {0} after,
     starting from the fixpoint = "any reachable pre-reset state")
     yields the reset-coverage lints: Z601 when a register can still
     hold UNDEF depth cycles after the pulse, Z602 when an observable
     net still reads UNDEF after reset settles *and* the UNDEF
     vanishes once the registers' UNDEF bits are stripped — i.e. the
     power-up UNDEF escapes the reset cone, rather than being a
     combinational artefact already reported by Z2xx.

   - For small acyclic designs without RANDOM, a concrete breadth-first
     search over register states (inputs enumerated over {0,1})
     produces Z603: an actual stimulus trace that makes two drivers of
     an unproven net fire in one cycle.  The mini-evaluator mirrors
     the simulator exactly (guards booleanized, an UNDEF guard drives
     UNDEF, two driving values force UNDEF and count as a conflict,
     registers keep their value on an all-NOINFL input), and oracle
     row O8 replays the traces through the real engines.

   Everything shares Lint's environment assumption: inputs are poked
   to defined values.  Discharge is therefore opt-in at simulation
   time (zeusc sim --discharge). *)

open Zeus_base

type witness = {
  w_class : int;
  w_name : string;
  w_cycle : int;
  w_trace : (int * string * Logic.t) list array;
}

type reg_trace = {
  rt_name : string;
  rt_out : int;
  rt_init : int;
  rt_fix : int;
  rt_reset : int array;
}

type report = {
  sp_depth : int;
  sp_regs : reg_trace list;
  sp_upgraded : (int * string) list;
  sp_findings : Diag.t list;
  sp_witnesses : witness list;
  sp_splits : int;
  sp_lint : Lint.report;
}

let default_depth = 8

(* ------------------------------------------------------------------ *)
(* Context: the netlist pre-resolved to canonical classes               *)
(* ------------------------------------------------------------------ *)

type asrc =
  | Aconst of Logic.t
  | Anet of int (* canonical class *)

type aprod =
  | Agate of Netlist.gate_op * asrc array
  | Adriver of asrc option * asrc (* guard, source *)

type ctx = {
  design : Elaborate.design;
  nl : Netlist.t;
  n : int;
  is_canon : bool array;
  prods : aprod list array; (* per canonical class, creation order *)
  producers : int array;
  kmux : bool array;
  is_input : bool array;
  clk : int;
  rset : int;
  regs : Netlist.reg array;
  rin_cls : int array; (* per register, canonical class of rin *)
  rout_cls : int array;
  reg_ix_of_out : (int, int list) Hashtbl.t;
  members : Netlist.net list array; (* per canonical class, id order *)
  has_random : bool;
  st : Lint.expander;
  conds : (int, Lint.bexp array) Hashtbl.t; (* NRC class -> drive conds *)
  verdict_of : (int, Lint.classification) Hashtbl.t;
  mutable fresh : int; (* per-occurrence renamed variables *)
}

let make_ctx (design : Elaborate.design) (lintrep : Lint.report) =
  let nl = design.Elaborate.netlist in
  let n = Netlist.net_count nl in
  let canon id = Netlist.canonical nl id in
  let is_canon = Array.init n (fun c -> canon c = c) in
  let asrc_of = function
    | Netlist.Sconst v -> Aconst v
    | Netlist.Snet id -> Anet (canon id)
  in
  let prods = Array.make n [] in
  let producers = Array.make n 0 in
  let has_random = ref false in
  List.iter
    (fun (g : Netlist.gate) ->
      if g.Netlist.op = Netlist.Grandom then has_random := true;
      let c = canon g.Netlist.output in
      prods.(c) <-
        Agate (g.Netlist.op, Array.of_list (List.map asrc_of g.Netlist.inputs))
        :: prods.(c);
      producers.(c) <- producers.(c) + 1)
    (Netlist.gates nl);
  List.iter
    (fun (d : Netlist.driver) ->
      let c = canon d.Netlist.target in
      prods.(c) <-
        Adriver (Option.map asrc_of d.Netlist.guard, asrc_of d.Netlist.source)
        :: prods.(c);
      producers.(c) <- producers.(c) + 1)
    (Netlist.drivers nl);
  Array.iteri (fun c l -> prods.(c) <- List.rev l) prods;
  let kmux = Array.make n false in
  let members = Array.make n [] in
  Array.iter
    (fun (net : Netlist.net) ->
      let c = canon net.Netlist.id in
      if net.Netlist.kind = Etype.KMux then kmux.(c) <- true;
      members.(c) <- net :: members.(c))
    (Netlist.nets_array nl);
  Array.iteri (fun c l -> members.(c) <- List.rev l) members;
  let is_input = Array.make n false in
  List.iter (fun id -> is_input.(canon id) <- true) (Check.top_input_nets design);
  let regs = Array.of_list (Netlist.regs nl) in
  let rin_cls = Array.map (fun (r : Netlist.reg) -> canon r.Netlist.rin) regs in
  let rout_cls = Array.map (fun (r : Netlist.reg) -> canon r.Netlist.rout) regs in
  let reg_ix_of_out = Hashtbl.create 16 in
  Array.iteri
    (fun i c ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt reg_ix_of_out c) in
      Hashtbl.replace reg_ix_of_out c (prev @ [ i ]))
    rout_cls;
  let st = Lint.make_expander design in
  let verdict_of = Hashtbl.create 64 in
  let conds = Hashtbl.create 64 in
  List.iter
    (fun (v : Lint.net_verdict) ->
      Hashtbl.replace verdict_of v.Lint.v_net v.Lint.v_class;
      if v.Lint.v_class = Lint.Needs_runtime_check then begin
        let c = v.Lint.v_net in
        (* drive conditions per producer, in creation order — a gate
           always drives; a driver drives when its guard is 1 or
           undefined (drive_cond).  Expansion is forced here, once. *)
        let cs =
          List.map
            (function
              | Agate _ -> Lint.Btrue
              | Adriver (g, _) ->
                  let g =
                    Option.map
                      (function
                        | Aconst v -> Netlist.Sconst v
                        | Anet c -> Netlist.Snet c)
                      g
                  in
                  Lint.drive_cond st g)
            prods.(c)
        in
        Hashtbl.replace conds c (Array.of_list cs)
      end)
    lintrep.Lint.verdicts;
  {
    design;
    nl;
    n;
    is_canon;
    prods;
    producers;
    kmux;
    is_input;
    clk = canon design.Elaborate.clk_net;
    rset = canon design.Elaborate.rset_net;
    regs;
    rin_cls;
    rout_cls;
    reg_ix_of_out;
    members;
    has_random = !has_random;
    st;
    conds;
    verdict_of;
    fresh = -1_000_000;
  }

(* ------------------------------------------------------------------ *)
(* Per-state exclusivity                                                *)
(* ------------------------------------------------------------------ *)

(* state mask of a register-output variable, or None when the variable
   is not a (pure) register output *)
let state_mask_of_var ctx reg_masks v =
  match Hashtbl.find_opt ctx.reg_ix_of_out v with
  | Some idxs when ctx.producers.(v) = 0 ->
      Some (List.fold_left (fun a i -> a lor reg_masks.(i)) 0 idxs)
  | Some _ -> None (* register output with extra producers: opaque *)
  | None -> if v >= 0 && v < ctx.n then Some (Lint.m_zero lor Lint.m_one) else None

(* substitute the state into a guard formula; UNDEF-capable and opaque
   leaves become fresh per-occurrence variables (sound for UNSAT under
   four-valued evaluation, see the header comment) *)
let substitute ctx reg_masks e =
  let fresh_var () =
    ctx.fresh <- ctx.fresh - 1;
    Lint.Bvar ctx.fresh
  in
  let rec go e =
    match e with
    | Lint.Btrue | Lint.Bfalse -> e
    | Lint.Bvar v -> (
        if v < 0 || v >= ctx.n then fresh_var ()
        else if ctx.is_input.(v) then Lint.Bvar v (* env-defined: {0,1} *)
        else
          match state_mask_of_var ctx reg_masks v with
          | None -> fresh_var ()
          | Some m ->
              let m = Lint.booleanize_mask m in
              if m land Lint.m_undef <> 0 then fresh_var ()
              else if m = Lint.m_zero then Lint.Bfalse
              else if m = Lint.m_one then Lint.Btrue
              else Lint.Bvar v)
    | Lint.Bopq _ -> fresh_var ()
    | Lint.Bnot a -> Lint.bnot (go a)
    | Lint.Band l -> Lint.band (List.map go l)
    | Lint.Bor l -> Lint.bor (List.map go l)
    | Lint.Bxor (a, b) -> Lint.bxor (go a) (go b)
  in
  go e

(* are all producer pairs of this class exclusive in this state? *)
let class_exclusive ctx ~budget ~splits ~reg_masks conds =
  let np = Array.length conds in
  let sub = Array.map (substitute ctx reg_masks) conds in
  try
    for i = 0 to np - 1 do
      for j = i + 1 to np - 1 do
        match Lint.band [ sub.(i); sub.(j) ] with
        | Lint.Bfalse -> ()
        | f -> (
            match Lint.solve ~budget ~splits f with
            | Lint.Unsat -> ()
            | Lint.Sat _ | Lint.Budget_out -> raise Exit)
      done
    done;
    true
  with Exit -> false

(* the per-class exclusivity decision for one abstract state; only
   needs-runtime-check classes are re-proved (Safe transfers, Conflict
   never does) *)
let compute_exclusive ctx ~budget ~splits ~reg_masks =
  let tbl = Hashtbl.create 16 in
  Hashtbl.iter
    (fun c conds ->
      Hashtbl.replace tbl c (class_exclusive ctx ~budget ~splits ~reg_masks conds))
    ctx.conds;
  fun c ->
    match Hashtbl.find_opt ctx.verdict_of c with
    | Some Lint.Safe | Some Lint.Safe_sequential -> true
    | Some Lint.Conflict -> false
    | Some Lint.Needs_runtime_check -> (
        match Hashtbl.find_opt tbl c with Some b -> b | None -> false)
    | None -> false

(* ------------------------------------------------------------------ *)
(* One abstract cycle                                                   *)
(* ------------------------------------------------------------------ *)

(* combinational value-set masks for one cycle: register outputs read
   the state, inputs are defined, RSET reads [rset_mask], and the
   conflict-injects-UNDEF rule is gated on [exclusive] *)
let cycle_masks ctx ~rset_mask ~reg_masks ~exclusive =
  let sets = Array.make ctx.n 0 in
  let mask_of_src = function
    | Aconst v -> Lint.mask_of v
    | Anet c -> sets.(c)
  in
  let base = Array.make ctx.n 0 in
  for c = 0 to ctx.n - 1 do
    if ctx.is_canon.(c) then
      base.(c) <-
        (if ctx.is_input.(c) then
           if c = ctx.rset then rset_mask else Lint.m_zero lor Lint.m_one
         else
           match Hashtbl.find_opt ctx.reg_ix_of_out c with
           | Some idxs -> List.fold_left (fun a i -> a lor reg_masks.(i)) 0 idxs
           | None -> if ctx.producers.(c) = 0 then Lint.m_undef else 0)
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    for c = 0 to ctx.n - 1 do
      if ctx.is_canon.(c) then begin
        let driving = ref 0 in
        let m = ref base.(c) in
        List.iter
          (fun p ->
            let pm =
              match p with
              | Agate (op, ins) ->
                  Lint.gate_mask op (List.map mask_of_src (Array.to_list ins))
              | Adriver (None, src) -> mask_of_src src
              | Adriver (Some g, src) ->
                  let gm = Lint.booleanize_mask (mask_of_src g) in
                  (if gm land Lint.m_one <> 0 then mask_of_src src else 0)
                  lor (if gm land Lint.m_zero <> 0 then Lint.m_noinfl else 0)
                  lor (if gm land Lint.m_undef <> 0 then Lint.m_undef else 0)
            in
            if pm land lnot Lint.m_noinfl <> 0 then incr driving;
            m := !m lor pm)
          ctx.prods.(c);
        let m =
          !m lor (if !driving >= 2 && not (exclusive c) then Lint.m_undef else 0)
        in
        let m = sets.(c) lor m in
        if m <> sets.(c) then begin
          sets.(c) <- m;
          changed := true
        end
      end
    done
  done;
  (* per class: can every producer be silent in the same cycle?  Only
     then can a register input keep its stored value — one driver whose
     guard is never 0 (a reset pulse, say) forces a latch no matter how
     many silent siblings it has *)
  let all_silent = Array.make ctx.n false in
  for c = 0 to ctx.n - 1 do
    if ctx.is_canon.(c) && ctx.prods.(c) <> [] then
      all_silent.(c) <-
        List.for_all
          (fun p ->
            match p with
            | Agate _ -> false
            | Adriver (None, src) ->
                mask_of_src src land Lint.m_noinfl <> 0
            | Adriver (Some g, src) ->
                Lint.booleanize_mask (mask_of_src g) land Lint.m_zero <> 0
                || mask_of_src src land Lint.m_noinfl <> 0)
          ctx.prods.(c)
  done;
  (sets, all_silent)

(* the register latch: values latch when some driver fires; the stored
   value survives only when every driver can be silent in the same
   cycle ([all_silent]); producer-less inputs latch pokes (defined, by
   the environment assumption) *)
let next_regs ctx (sets, all_silent) reg_masks =
  Array.mapi
    (fun i (_ : Netlist.reg) ->
      let rc = ctx.rin_cls.(i) in
      let old = reg_masks.(i) in
      if ctx.producers.(rc) = 0 then
        if ctx.is_input.(rc) then old lor Lint.m_zero lor Lint.m_one else old
      else begin
        let m = sets.(rc) in
        let latched = m land (Lint.m_zero lor Lint.m_one lor Lint.m_undef) in
        latched
        lor (if all_silent.(rc) || latched = 0 then old else 0)
      end)
    ctx.regs

(* ------------------------------------------------------------------ *)
(* Reachability fixpoint and reset trajectory                           *)
(* ------------------------------------------------------------------ *)

let any_input_mask = Lint.m_zero lor Lint.m_one

(* union-accumulated fixpoint from power-up: an over-approximation of
   every reachable register state (RSET free, inputs defined) *)
let powerup_fixpoint ctx ~budget ~splits =
  let reg_masks =
    Array.map (fun (r : Netlist.reg) -> Lint.mask_of r.Netlist.rinit) ctx.regs
  in
  let limit = (4 * Array.length ctx.regs) + 2 in
  let continue_ = ref true in
  let iters = ref 0 in
  while !continue_ && !iters < limit do
    incr iters;
    let exclusive = compute_exclusive ctx ~budget ~splits ~reg_masks in
    let sets = cycle_masks ctx ~rset_mask:any_input_mask ~reg_masks ~exclusive in
    let next = next_regs ctx sets reg_masks in
    continue_ := false;
    Array.iteri
      (fun i m ->
        let u = reg_masks.(i) lor m in
        if u <> reg_masks.(i) then begin
          reg_masks.(i) <- u;
          continue_ := true
        end)
      next
  done;
  reg_masks

(* forward images through a RSET pulse: index 0 = the pre-reset state
   (the fixpoint), index i = the state i cycles after the pulse began
   (the pulse itself is cycle 1, RSET = {1}; {0} afterwards) *)
let reset_trajectory ctx ~budget ~splits ~depth start =
  let traj = Array.make (depth + 1) [||] in
  traj.(0) <- Array.copy start;
  let cur = ref (Array.copy start) in
  for i = 1 to depth do
    let rset_mask = if i = 1 then Lint.m_one else Lint.m_zero in
    let exclusive = compute_exclusive ctx ~budget ~splits ~reg_masks:!cur in
    let sets = cycle_masks ctx ~rset_mask ~reg_masks:!cur ~exclusive in
    cur := next_regs ctx sets !cur;
    traj.(i) <- Array.copy !cur
  done;
  traj

(* ------------------------------------------------------------------ *)
(* Reporting helpers                                                    *)
(* ------------------------------------------------------------------ *)

(* representative user-visible net of a class, for findings (the lint
   discipline: read or output-pin, no '#', prefer a real location) *)
let class_rep ctx c =
  let visible =
    List.filter
      (fun (net : Netlist.net) ->
        (not (String.contains net.Netlist.name '#'))
        && (net.Netlist.reads > 0
           ||
           match net.Netlist.pin with
           | Some (_, (Etype.Out | Etype.Inout)) -> true
           | _ -> false))
      ctx.members.(c)
  in
  match
    List.filter (fun (n : Netlist.net) -> not (Loc.is_dummy n.Netlist.loc)) visible
  with
  | net :: _ -> Some net
  | [] -> ( match visible with net :: _ -> Some net | [] -> None)

let mask_to_string m =
  let parts =
    List.filter_map
      (fun (bit, s) -> if m land bit <> 0 then Some s else None)
      [
        (Lint.m_zero, "0");
        (Lint.m_one, "1");
        (Lint.m_undef, "U");
        (Lint.m_noinfl, "Z");
      ]
  in
  "{" ^ String.concat "," parts ^ "}"

(* ------------------------------------------------------------------ *)
(* Z601 / Z602                                                          *)
(* ------------------------------------------------------------------ *)

let reset_coverage ctx bag ~budget ~splits ~depth traj =
  let endst = traj.(depth) in
  (* Z601: a register that can still hold UNDEF depth cycles after the
     reset pulse began *)
  Array.iteri
    (fun i (r : Netlist.reg) ->
      if endst.(i) land Lint.m_undef <> 0 then
        let loc = (Netlist.net ctx.nl r.Netlist.rout).Netlist.loc in
        Diag.Bag.warning bag ~code:Diag.Code.seq_uninitialized Diag.Lint_error
          loc
          "register '%s' can still hold UNDEF %d cycle%s after a RSET pulse \
           — no reset path initializes it (reachable: %s)"
          r.Netlist.rpath depth
          (if depth = 1 then "" else "s")
          (mask_to_string endst.(i)))
    ctx.regs;
  (* Z602: an observable net that reads UNDEF after reset settles,
     where stripping the registers' UNDEF bits removes the UNDEF — the
     power-up UNDEF escapes the reset cone (purely combinational UNDEF
     sources are Z2xx territory and unaffected by the strip) *)
  let exclusive =
    compute_exclusive ctx ~budget ~splits ~reg_masks:endst
  in
  let sets, _ =
    cycle_masks ctx ~rset_mask:Lint.m_zero ~reg_masks:endst ~exclusive
  in
  let stripped =
    Array.map
      (fun m ->
        let s = m land lnot Lint.m_undef in
        if s = 0 then m else s)
      endst
  in
  let exclusive' =
    compute_exclusive ctx ~budget ~splits ~reg_masks:stripped
  in
  let sets', _ =
    cycle_masks ctx ~rset_mask:Lint.m_zero ~reg_masks:stripped
      ~exclusive:exclusive'
  in
  let live = Optimize.observable ctx.design in
  for c = 0 to ctx.n - 1 do
    if
      ctx.is_canon.(c) && live.(c)
      && (not (Hashtbl.mem ctx.reg_ix_of_out c))
      && (not ctx.is_input.(c))
      && Lint.booleanize_mask sets.(c) land Lint.m_undef <> 0
      && Lint.booleanize_mask sets'.(c) land Lint.m_undef = 0
    then
      match class_rep ctx c with
      | Some net ->
          Diag.Bag.warning bag ~code:Diag.Code.seq_undef_escape Diag.Lint_error
            net.Netlist.loc
            "'%s' can still read UNDEF after reset settles, and the UNDEF \
             originates in uninitialized register state — power-up UNDEF \
             escapes the reset cone into an observable net"
            net.Netlist.name
      | None -> ()
  done

(* ------------------------------------------------------------------ *)
(* Z603: concrete bounded reachability with witness traces              *)
(* ------------------------------------------------------------------ *)

(* hard caps keeping the concrete search cheap; past them the search
   is skipped (the abstract passes already ran) *)
let max_search_inputs = 5
let max_search_regs = 20
let max_search_classes = 3000
let max_search_states = 1024
let max_witnesses = 4

let gate_eval op (ins : Logic.t list) =
  let ins = List.map Logic.booleanize ins in
  match (op : Netlist.gate_op) with
  | Netlist.Gand -> Logic.and_list ins
  | Netlist.Gor -> Logic.or_list ins
  | Netlist.Gnand -> Logic.nand_list ins
  | Netlist.Gnor -> Logic.nor_list ins
  | Netlist.Gxor -> Logic.xor_list ins
  | Netlist.Gnot -> ( match ins with [ v ] -> Logic.not_ v | _ -> Logic.Undef)
  | Netlist.Gequal ->
      let len = List.length ins in
      if len mod 2 <> 0 then Logic.Undef
      else
        let a = List.filteri (fun i _ -> i < len / 2) ins
        and b = List.filteri (fun i _ -> i >= len / 2) ins in
        Logic.and_list (List.map2 Logic.equal2 a b)
  | Netlist.Grandom -> Logic.Undef (* excluded by has_random *)

(* one concrete cycle, mirroring the simulator: returns the resolved
   values, the conflicting classes and the next register state, or
   None when the sweep fails to stabilize (combinational cycle) *)
let concrete_cycle ctx (state : Logic.t array) (pokes : (int * Logic.t) list) =
  let values = Array.make ctx.n Logic.Undef in
  let root = Array.make ctx.n false in
  (* seeds: CLK is One, RSET defaults to Zero, pokes override *)
  for c = 0 to ctx.n - 1 do
    if ctx.is_canon.(c) && ctx.is_input.(c) then begin
      root.(c) <- true;
      values.(c) <-
        (if c = ctx.clk then Logic.One
         else if c = ctx.rset then Logic.Zero
         else Logic.Undef)
    end
  done;
  List.iter
    (fun (c, v) -> if root.(c) then values.(c) <- Logic.booleanize v)
    pokes;
  Array.iteri
    (fun i c ->
      if ctx.producers.(c) = 0 then begin
        root.(c) <- true;
        values.(c) <- state.(i)
      end)
    ctx.rout_cls;
  let value_of_src = function
    | Aconst v -> v
    | Anet c -> values.(c)
  in
  let drives = Array.make ctx.n 0 in
  let resolve c =
    let d = ref 0 in
    let value = ref Logic.Noinfl in
    List.iter
      (fun p ->
        let pv =
          match p with
          | Agate (op, ins) ->
              gate_eval op (List.map value_of_src (Array.to_list ins))
          | Adriver (None, src) -> value_of_src src
          | Adriver (Some g, src) -> (
              match Logic.booleanize (value_of_src g) with
              | Logic.Zero -> Logic.Noinfl
              | Logic.One -> value_of_src src
              | _ -> Logic.Undef)
        in
        if pv <> Logic.Noinfl then begin
          incr d;
          if !d = 1 then value := pv
        end)
      ctx.prods.(c);
    drives.(c) <- !d;
    let v =
      if !d >= 2 then Logic.Undef
      else if !d = 1 then !value
      else if ctx.kmux.(c) then Logic.Noinfl
      else Logic.Undef
    in
    if ctx.kmux.(c) then v else Logic.booleanize v
  in
  let stable = ref false in
  let sweeps = ref 0 in
  let cap = ctx.n + 8 in
  while (not !stable) && !sweeps < cap do
    incr sweeps;
    stable := true;
    for c = 0 to ctx.n - 1 do
      if ctx.is_canon.(c) && (not root.(c)) && ctx.prods.(c) <> [] then begin
        let v = resolve c in
        if v <> values.(c) then begin
          values.(c) <- v;
          stable := false
        end
      end
    done
  done;
  if not !stable then None
  else begin
    let conflicts = ref [] in
    for c = ctx.n - 1 downto 0 do
      if ctx.is_canon.(c) && (not root.(c)) && drives.(c) >= 2 then
        conflicts := c :: !conflicts
    done;
    let next =
      Array.mapi
        (fun i (_ : Netlist.reg) ->
          let rc = ctx.rin_cls.(i) in
          if ctx.producers.(rc) = 0 then
            if root.(rc) && ctx.is_input.(rc) then Logic.booleanize values.(rc)
            else state.(i)
          else if drives.(rc) >= 1 then Logic.booleanize values.(rc)
          else state.(i))
        ctx.regs
    in
    Some (values, !conflicts, next)
  end

let state_key state =
  String.init (Array.length state) (fun i -> Logic.to_char state.(i))

let concrete_search ctx ~depth =
  if ctx.has_random then []
  else if Array.length ctx.regs > max_search_regs then []
  else if ctx.n > max_search_classes then []
  else if
    (* register outputs must be pure state for the mini-evaluator *)
    Hashtbl.fold
      (fun c idxs bad ->
        bad || ctx.producers.(c) > 0 || List.length idxs > 1)
      ctx.reg_ix_of_out false
  then []
  else begin
    let targets =
      Hashtbl.fold
        (fun c v acc -> if v = Lint.Needs_runtime_check then c :: acc else acc)
        ctx.verdict_of []
    in
    if targets = [] then []
    else begin
      (* enumerated inputs: every top input except CLK (held at One) *)
      let ins =
        List.sort_uniq compare
          (List.filter_map
             (fun id ->
               let c = Netlist.canonical ctx.nl id in
               if c = ctx.clk then None else Some c)
             (Check.top_input_nets ctx.design))
      in
      if List.length ins > max_search_inputs then []
      else begin
        let ins = Array.of_list ins in
        let ni = Array.length ins in
        let combos =
          Array.init (1 lsl ni) (fun bits ->
              Array.to_list
                (Array.mapi
                   (fun k c ->
                     (c, if bits land (1 lsl k) <> 0 then Logic.One else Logic.Zero))
                   ins))
        in
        let name_of c = (Netlist.net ctx.nl c).Netlist.name in
        let init =
          Array.map (fun (r : Netlist.reg) -> r.Netlist.rinit) ctx.regs
        in
        let visited = Hashtbl.create 64 in
        Hashtbl.replace visited (state_key init) ();
        let queue = Queue.create () in
        Queue.add (init, []) queue;
        let witnesses = ref [] in
        let found = Hashtbl.create 8 in
        let remaining_targets = ref (List.length targets) in
        (try
           while not (Queue.is_empty queue) do
             let state, rev_trace = Queue.pop queue in
             let cycle = List.length rev_trace in
             if cycle < depth then
               Array.iter
                 (fun pokes ->
                   match concrete_cycle ctx state pokes with
                   | None -> raise Exit (* unstable: give up entirely *)
                   | Some (_, conflicts, next) ->
                       let rev_trace' = pokes :: rev_trace in
                       List.iter
                         (fun c ->
                           if
                             List.mem c targets
                             && not (Hashtbl.mem found c)
                             && List.length !witnesses < max_witnesses
                           then begin
                             Hashtbl.replace found c ();
                             decr remaining_targets;
                             let trace =
                               Array.of_list
                                 (List.rev_map
                                    (List.map (fun (c, v) -> (c, name_of c, v)))
                                    rev_trace')
                             in
                             witnesses :=
                               {
                                 w_class = c;
                                 w_name = name_of c;
                                 w_cycle = cycle;
                                 w_trace = trace;
                               }
                               :: !witnesses
                           end)
                         conflicts;
                       if
                         !remaining_targets > 0
                         && List.length !witnesses < max_witnesses
                       then begin
                         let key = state_key next in
                         if
                           (not (Hashtbl.mem visited key))
                           && Hashtbl.length visited < max_search_states
                         then begin
                           Hashtbl.replace visited key ();
                           Queue.add (next, rev_trace') queue
                         end
                       end
                       else raise Exit)
                 combos
           done
         with Exit -> ());
        List.rev !witnesses
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let run ?(depth = default_depth) ?(budget = Lint.default_budget) ?lint
    (design : Elaborate.design) =
  let lintrep =
    match lint with Some r -> r | None -> Lint.run ~budget design
  in
  let ctx = make_ctx design lintrep in
  let splits = ref 0 in
  let bag = Diag.Bag.create () in
  (* 1. reachability fixpoint from power-up *)
  let fix = powerup_fixpoint ctx ~budget ~splits in
  (* 2. upgrades: needs-runtime-check classes exclusive in every
     reachable state *)
  let exclusive_fix = compute_exclusive ctx ~budget ~splits ~reg_masks:fix in
  let upgraded =
    List.filter_map
      (fun (v : Lint.net_verdict) ->
        if v.Lint.v_class = Lint.Needs_runtime_check && exclusive_fix v.Lint.v_net
        then Some (v.Lint.v_net, v.Lint.v_name)
        else None)
      lintrep.Lint.verdicts
  in
  let upgraded_set = Hashtbl.create 16 in
  List.iter (fun (c, _) -> Hashtbl.replace upgraded_set c ()) upgraded;
  let verdicts =
    List.map
      (fun (v : Lint.net_verdict) ->
        if Hashtbl.mem upgraded_set v.Lint.v_net then
          {
            v with
            Lint.v_class = Lint.Safe_sequential;
            Lint.v_detail =
              Printf.sprintf
                "exclusive in every register state reachable from power-up \
                 (was: %s)"
                v.Lint.v_detail;
          }
        else v)
      lintrep.Lint.verdicts
  in
  (* record the refreshed verdicts so reset-coverage and the concrete
     search see the upgrades *)
  List.iter
    (fun (c, _) -> Hashtbl.replace ctx.verdict_of c Lint.Safe_sequential)
    upgraded;
  (* 3. reset trajectory: Z601 / Z602 *)
  let traj = reset_trajectory ctx ~budget ~splits ~depth fix in
  reset_coverage ctx bag ~budget ~splits ~depth traj;
  (* 4. concrete witness search: Z603 (over the still-unproven nets) *)
  let witnesses = concrete_search ctx ~depth in
  List.iter
    (fun w ->
      let loc =
        match class_rep ctx w.w_class with
        | Some net -> net.Netlist.loc
        | None -> (Netlist.net ctx.nl w.w_class).Netlist.loc
      in
      let stim =
        String.concat "; "
          (List.mapi
             (fun i pokes ->
               Printf.sprintf "cycle %d: %s" i
                 (String.concat ", "
                    (List.map
                       (fun (_, name, v) ->
                         Printf.sprintf "%s=%s" name (Logic.to_string v))
                       pokes)))
             (Array.to_list w.w_trace))
      in
      Diag.Bag.warning bag ~code:Diag.Code.seq_conflict_reachable
        Diag.Lint_error loc
        "'%s': a runtime drive conflict is reachable at cycle %d from \
         power-up — concrete witness: %s"
        w.w_name w.w_cycle stim)
    witnesses;
  let regs =
    Array.to_list
      (Array.mapi
         (fun i (r : Netlist.reg) ->
           {
             rt_name = r.Netlist.rpath;
             rt_out = ctx.rout_cls.(i);
             rt_init = Lint.mask_of r.Netlist.rinit;
             rt_fix = fix.(i);
             rt_reset = Array.map (fun masks -> masks.(i)) traj;
           })
         ctx.regs)
  in
  {
    sp_depth = depth;
    sp_regs = regs;
    sp_upgraded = upgraded;
    sp_findings = Diag.Bag.all bag;
    sp_witnesses = witnesses;
    sp_splits = !splits;
    sp_lint =
      {
        lintrep with
        Lint.verdicts;
        (* the Z102 "needs runtime check" warnings of upgraded nets are
           stale — the runtime check was just proved redundant *)
        findings =
          List.filter
            (fun (d : Diag.t) ->
              d.Diag.code <> Some Diag.Code.drive_unproven
              || not
                   (List.exists
                      (fun (_, name) ->
                        let q = "'" ^ name ^ "'" in
                        let ql = String.length q in
                        String.length d.Diag.message >= ql
                        && String.sub d.Diag.message 0 ql = q)
                      upgraded))
            lintrep.Lint.findings;
      };
  }

let discharged (design : Elaborate.design) report =
  let nl = design.Elaborate.netlist in
  let arr = Array.make (Netlist.net_count nl) false in
  List.iter
    (fun (v : Lint.net_verdict) ->
      if v.Lint.v_class = Lint.Safe || v.Lint.v_class = Lint.Safe_sequential
      then arr.(v.Lint.v_net) <- true)
    report.sp_lint.Lint.verdicts;
  arr

(* ------------------------------------------------------------------ *)
(* Summary and JSON                                                     *)
(* ------------------------------------------------------------------ *)

let summary report =
  let nrc_before =
    List.length report.sp_upgraded
    + Lint.count Lint.Needs_runtime_check report.sp_lint
  in
  Printf.sprintf
    "depth %d: %d register%s; %d/%d needs-runtime-check upgraded to \
     safe-sequential; %d finding%s, %d witness%s (%d case splits)"
    report.sp_depth
    (List.length report.sp_regs)
    (if List.length report.sp_regs = 1 then "" else "s")
    (List.length report.sp_upgraded)
    nrc_before
    (List.length report.sp_findings)
    (if List.length report.sp_findings = 1 then "" else "s")
    (List.length report.sp_witnesses)
    (if List.length report.sp_witnesses = 1 then "" else "es")
    report.sp_splits

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_schema_version = 1

let json_of_report report =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\n  \"version\": %d,\n  \"depth\": %d,\n  \"registers\": ["
       json_schema_version report.sp_depth);
  List.iteri
    (fun i rt ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n    {\"name\":\"%s\",\"init\":\"%s\",\"reachable\":\"%s\",\"reset\":[%s]}"
           (json_escape rt.rt_name)
           (mask_to_string rt.rt_init)
           (mask_to_string rt.rt_fix)
           (String.concat ","
              (List.map
                 (fun m -> Printf.sprintf "\"%s\"" (mask_to_string m))
                 (Array.to_list rt.rt_reset)))))
    report.sp_regs;
  Buffer.add_string b "\n  ],\n  \"upgraded\": [";
  List.iteri
    (fun i (_, name) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\n    \"%s\"" (json_escape name)))
    report.sp_upgraded;
  Buffer.add_string b "\n  ],\n  \"findings\": [";
  List.iteri
    (fun i (d : Diag.t) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\n    {\"code\":%s,\"severity\":\"%s\",\"message\":\"%s\"}"
           (match d.Diag.code with
           | Some c -> Printf.sprintf "\"%s\"" (json_escape c)
           | None -> "null")
           (Diag.severity_to_string d.Diag.severity)
           (json_escape d.Diag.message)))
    report.sp_findings;
  Buffer.add_string b "\n  ],\n  \"witnesses\": [";
  List.iteri
    (fun i w ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\n    {\"net\":\"%s\",\"cycle\":%d,\"trace\":[%s]}"
           (json_escape w.w_name) w.w_cycle
           (String.concat ","
              (List.map
                 (fun pokes ->
                   Printf.sprintf "[%s]"
                     (String.concat ","
                        (List.map
                           (fun (_, name, v) ->
                             Printf.sprintf "{\"net\":\"%s\",\"value\":\"%s\"}"
                               (json_escape name) (Logic.to_string v))
                           pokes)))
                 (Array.to_list w.w_trace)))))
    report.sp_witnesses;
  Buffer.add_string b
    (Printf.sprintf
       "\n  ],\n  \"summary\": \
        {\"registers\":%d,\"upgraded\":%d,\"needs_runtime_check\":%d,\"findings\":%d,\"witnesses\":%d,\"splits\":%d}\n\
        }"
       (List.length report.sp_regs)
       (List.length report.sp_upgraded)
       (Lint.count Lint.Needs_runtime_check report.sp_lint)
       (List.length report.sp_findings)
       (List.length report.sp_witnesses)
       report.sp_splits);
  Buffer.contents b
