(** The elaborated, bit-level design.

    Elaboration flattens every structured signal into nets (one per basic
    substructure) and translates the statement part into gates (the
    predefined function components, bit-blasted), registers, drivers
    (assignments, optionally guarded by an IF condition net) and alias
    classes ('==', kept in a union-find).

    Per-net bookkeeping — instance pin role, read counts, '*' closure,
    and which instance scopes touched the net — feeds the static checker
    of report section 4.7. *)

open Zeus_base

type src =
  | Snet of int
  | Sconst of Logic.t

type gate_op =
  | Gand
  | Gor
  | Gnand
  | Gnor
  | Gxor
  | Gnot
  | Gequal  (** inputs are the two operands' bit lists, concatenated *)
  | Grandom  (** no inputs: the predefined pseudo-random source *)

val gate_op_to_string : gate_op -> string

type net = {
  id : int;
  name : string; (** hierarchical path, e.g. ["adder.add[2].cout"] *)
  kind : Etype.kind;
  pin : (int * Etype.mode) option;
      (** pin of an instance: instance id and declared mode *)
  loc : Loc.t;
  mutable reads : int;
  mutable starred : bool; (** explicitly closed with ["*"] *)
  mutable touched : int list;
      (** instance scopes that read/drove/starred/aliased this net *)
}

type gate = {
  gid : int;
  op : gate_op;
  inputs : src list;
  output : int;
  gloc : Loc.t;
}

type reg = {
  rid : int;
  rin : int;
  rout : int;
  rpath : string;
  rinit : Logic.t;
      (** power-up value — [Undef] unless declared [REG(c)] (the
          reconstructed section 5.2 initialization) *)
}

type driver = {
  did : int;
  target : int;
  guard : src option; (** [None] for unconditional assignments *)
  source : src;
  dloc : Loc.t;
}

type instance = {
  iid : int;
  ipath : string;
  itype : string;
  iloc : Loc.t;
  mutable connected : bool; (** a connection statement was given *)
  mutable iports : (string * Etype.mode * int list) list;
  mutable is_function_call : bool; (** inlined function component *)
}

type t

val create : unit -> t

(** {1 Construction} *)

val fresh_net :
  t ->
  name:string ->
  kind:Etype.kind ->
  ?pin:int * Etype.mode ->
  loc:Loc.t ->
  unit ->
  int

val add_gate : t -> op:gate_op -> inputs:src list -> output:int -> loc:Loc.t -> int

val add_reg : t -> rin:int -> rout:int -> path:string -> init:Logic.t -> int

(** Adds a driver, deduplicating exact repeats (same target, source and
    guard) — "it is allowed to specify connections several times as long
    as they are identical" (section 4.3).  Returns [-1] for a dropped
    duplicate. *)
val add_driver :
  t -> scope:int -> target:int -> guard:src option -> source:src -> loc:Loc.t -> int

val add_instance :
  t ->
  path:string ->
  type_name:string ->
  ports:(string * Etype.mode * int list) list ->
  loc:Loc.t ->
  instance

val add_order_constraint : t -> loc:Loc.t -> before:int list -> after:int list -> unit

(** {1 Aliasing ('==')} *)

(** Merge two nets into one alias class; both count as touched by
    [scope]. *)
val union : t -> scope:int -> int -> int -> unit

(** Canonical representative of a net's alias class. *)
val canonical : t -> int -> int

val same_class : t -> int -> int -> bool

(** {1 Usage bookkeeping} *)

val mark_read : t -> scope:int -> int -> unit
val mark_read_src : t -> scope:int -> src -> unit
val mark_starred : t -> scope:int -> int -> unit
val touch : t -> scope:int -> int -> unit

(** {1 Access} *)

val net_count : t -> int
val net : t -> int -> net
val nets_array : t -> net array
val gates : t -> gate list
val drivers : t -> driver list
val regs : t -> reg list
val instances : t -> instance list
val order_constraints : t -> (Loc.t * int list * int list) list
val drivers_by_target : t -> (int * driver list) list

(** Net ids written (driver targets, gate outputs) since the given
    snapshot from {!counts} — builds SEQUENTIAL ordering constraints. *)
val writes_since : t -> drivers:int -> gates:int -> int list

val counts : t -> int * int

val instance_count : t -> int

(** Instance by id; raises [Not_found] for unknown ids. *)
val find_instance : t -> int -> instance

(** A shallow variant with replaced gate/driver lists (given in forward
    order) — nets, alias classes and instances are shared with the
    original.  Used by {!Optimize}. *)
val with_nodes : t -> gates:gate list -> drivers:driver list -> t

(** {!with_nodes} plus extra alias unions, one [(target, source)] pair
    per propagated copy — {!Reduce}'s wire-merging hook.  The union-find
    is copied, not shared, so the original keeps its own classes; usage
    bookkeeping is not touched. *)
val with_nodes_merged :
  t -> gates:gate list -> drivers:driver list -> merges:(int * int) list -> t

(** One-line summary: net/gate/driver/reg/instance counts. *)
val stats : t -> string
