(* The elaborated, bit-level design.

   Elaboration flattens every structured signal into *nets* (one per basic
   substructure) and translates statements into:
   - gates (the predefined function components, bit-blasted),
   - registers (REG instances),
   - drivers (assignments, unconditional or guarded by a condition net),
   - alias classes ("==", union-find).

   Per-net bookkeeping (role, pin-of-instance, reads, stars) feeds the
   static checker. *)

open Zeus_base

type src =
  | Snet of int
  | Sconst of Logic.t

type gate_op =
  | Gand
  | Gor
  | Gnand
  | Gnor
  | Gxor
  | Gnot
  | Gequal (* inputs are the two operands' bits, concatenated *)
  | Grandom (* no inputs; pseudo-random source, section 7 *)

let gate_op_to_string = function
  | Gand -> "AND"
  | Gor -> "OR"
  | Gnand -> "NAND"
  | Gnor -> "NOR"
  | Gxor -> "XOR"
  | Gnot -> "NOT"
  | Gequal -> "EQUAL"
  | Grandom -> "RANDOM"

type net = {
  id : int;
  name : string; (* hierarchical path *)
  kind : Etype.kind;
  (* pin of an instance: (instance id, port mode as seen from inside) *)
  pin : (int * Etype.mode) option;
  loc : Loc.t;
  mutable reads : int; (* number of places reading this net *)
  mutable starred : bool; (* explicitly closed with "*" *)
  mutable touched : int list; (* instance scopes that read/drove/starred it *)
}

type gate = {
  gid : int;
  op : gate_op;
  inputs : src list;
  output : int;
  gloc : Loc.t;
}

type reg = {
  rid : int;
  rin : int;
  rout : int;
  rpath : string;
  rinit : Logic.t; (* power-up value; UNDEF unless REG(c) was used *)
}

type driver = {
  did : int;
  target : int;
  guard : src option; (* None: unconditional *)
  source : src;
  dloc : Loc.t;
}

type instance = {
  iid : int;
  ipath : string;
  itype : string; (* type name for diagnostics *)
  iloc : Loc.t;
  mutable connected : bool; (* a connection statement was given *)
  mutable iports : (string * Etype.mode * int list) list; (* port -> bit nets *)
  mutable is_function_call : bool; (* inlined function component instance *)
}

type t = {
  mutable nets : net array; (* growable; slots >= n_nets are junk *)
  mutable n_nets : int;
  mutable gates : gate list;
  mutable n_gates : int;
  mutable drivers : driver list;
  mutable n_drivers : int;
  mutable regs : reg list;
  mutable n_regs : int;
  mutable instances : instance list;
  mutable n_instances : int;
  (* union-find for "==" aliases *)
  mutable uf_parent : int array;
  (* ordering constraints from SEQUENTIAL: (before, after) net sets *)
  mutable order_constraints : (Loc.t * int list * int list) list;
  driver_index : (int, driver list) Hashtbl.t; (* raw target -> drivers *)
  inst_index : (int, instance) Hashtbl.t;
}

let create () =
  {
    nets = [||];
    n_nets = 0;
    gates = [];
    n_gates = 0;
    drivers = [];
    n_drivers = 0;
    regs = [];
    n_regs = 0;
    instances = [];
    n_instances = 0;
    uf_parent = Array.make 64 0;
    order_constraints = [];
    driver_index = Hashtbl.create 64;
    inst_index = Hashtbl.create 64;
  }

let net_count t = t.n_nets

let fresh_net t ~name ~kind ?pin ~loc () =
  let id = t.n_nets in
  let n = { id; name; kind; pin; loc; reads = 0; starred = false; touched = [] } in
  if id >= Array.length t.nets then begin
    let cap = max 64 (2 * Array.length t.nets) in
    let bigger = Array.make cap n in
    Array.blit t.nets 0 bigger 0 (Array.length t.nets);
    t.nets <- bigger
  end;
  t.nets.(id) <- n;
  t.n_nets <- id + 1;
  if id >= Array.length t.uf_parent then begin
    let bigger = Array.make (max 64 (2 * Array.length t.uf_parent)) 0 in
    Array.blit t.uf_parent 0 bigger 0 (Array.length t.uf_parent);
    t.uf_parent <- bigger
  end;
  t.uf_parent.(id) <- id;
  id

let nets_array t = Array.sub t.nets 0 t.n_nets

let net t id =
  if id < 0 || id >= t.n_nets then invalid_arg "Netlist.net: bad id";
  t.nets.(id)

let add_gate t ~op ~inputs ~output ~loc =
  let g = { gid = t.n_gates; op; inputs; output; gloc = loc } in
  t.gates <- g :: t.gates;
  t.n_gates <- t.n_gates + 1;
  g.gid

let add_reg t ~rin ~rout ~path ~init =
  let r = { rid = t.n_regs; rin; rout; rpath = path; rinit = init } in
  t.regs <- r :: t.regs;
  t.n_regs <- t.n_regs + 1;
  r.rid

(* "It is allowed to specify connections several times as long as they
   are identical" (section 4.3): an exact duplicate of an existing drive
   (same target, source and guard) is dropped. *)
let touch t ~scope id =
  let n = t.nets.(id) in
  if not (List.memq scope n.touched) then n.touched <- scope :: n.touched

let add_driver t ~scope ~target ~guard ~source ~loc =
  touch t ~scope target;
  let duplicate =
    List.exists
      (fun d ->
        d.target = target && d.source = source && d.guard = guard)
      (Option.value ~default:[] (Hashtbl.find_opt t.driver_index target))
  in
  if duplicate then -1
  else begin
    let d = { did = t.n_drivers; target; guard; source; dloc = loc } in
    t.drivers <- d :: t.drivers;
    t.n_drivers <- t.n_drivers + 1;
    Hashtbl.replace t.driver_index target
      (d :: Option.value ~default:[] (Hashtbl.find_opt t.driver_index target));
    d.did
  end

let add_instance t ~path ~type_name ~ports ~loc =
  let i =
    {
      iid = t.n_instances;
      ipath = path;
      itype = type_name;
      iloc = loc;
      connected = false;
      iports = ports;
      is_function_call = false;
    }
  in
  t.instances <- i :: t.instances;
  t.n_instances <- t.n_instances + 1;
  Hashtbl.replace t.inst_index i.iid i;
  i

(* Net ids written (driver targets, gate outputs) since the given driver
   and gate counts — used to build SEQUENTIAL ordering constraints. *)
let writes_since t ~drivers:n_d ~gates:n_g =
  let rec take_drivers acc = function
    | d :: rest when d.did >= n_d -> take_drivers (d.target :: acc) rest
    | _ -> acc
  in
  let rec take_gates acc = function
    | g :: rest when g.gid >= n_g -> take_gates (g.output :: acc) rest
    | _ -> acc
  in
  take_drivers (take_gates [] t.gates) t.drivers

let counts t = (t.n_drivers, t.n_gates)

let instance_count t = t.n_instances

let find_instance t iid = Hashtbl.find t.inst_index iid

let add_order_constraint t ~loc ~before ~after =
  t.order_constraints <- (loc, before, after) :: t.order_constraints

(* --- union-find ------------------------------------------------------ *)

let rec find t i =
  let p = t.uf_parent.(i) in
  if p = i then i
  else begin
    let r = find t p in
    t.uf_parent.(i) <- r;
    r
  end

let union t ~scope a b =
  touch t ~scope a;
  touch t ~scope b;
  let ra = find t a and rb = find t b in
  if ra <> rb then t.uf_parent.(rb) <- ra

let canonical t i = find t i

let same_class t a b = find t a = find t b

(* --- read/star bookkeeping ------------------------------------------- *)

let mark_read t ~scope id =
  (net t id).reads <- (net t id).reads + 1;
  touch t ~scope id

let mark_read_src t ~scope = function
  | Snet id -> mark_read t ~scope id
  | Sconst _ -> ()

let mark_starred t ~scope id =
  (net t id).starred <- true;
  touch t ~scope id

(* --- accessors for later phases -------------------------------------- *)

let gates t = List.rev t.gates

let drivers t = List.rev t.drivers

let regs t = List.rev t.regs

let instances t = List.rev t.instances

let order_constraints t = List.rev t.order_constraints

(* Drivers grouped by canonical target — used by checker and simulator. *)
let drivers_by_target t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun d ->
      let key = canonical t d.target in
      Hashtbl.replace tbl key (d :: Option.value ~default:[] (Hashtbl.find_opt tbl key)))
    t.drivers;
  Hashtbl.fold (fun k v acc -> (k, List.rev v) :: acc) tbl []

(* a shallow variant of [t] with replaced gate/driver lists — used by
   the optimizer; nets, aliases and instances are shared *)
let with_nodes t ~gates ~drivers =
  {
    t with
    gates = List.rev gates;
    n_gates = List.length gates;
    drivers = List.rev drivers;
    n_drivers = List.length drivers;
  }

(* [with_nodes] plus extra alias unions — the reducer's copy-propagation
   hook.  The union-find is copied first, so the original's classes are
   untouched; usage bookkeeping ([reads], [touched]) is deliberately not
   updated: these unions are an optimization artifact, not source-level
   '==' aliases. *)
let with_nodes_merged t ~gates ~drivers ~merges =
  let t' =
    { (with_nodes t ~gates ~drivers) with uf_parent = Array.copy t.uf_parent }
  in
  List.iter
    (fun (a, b) ->
      let ra = find t' a and rb = find t' b in
      if ra <> rb then t'.uf_parent.(rb) <- ra)
    merges;
  t'

let stats t =
  Fmt.str "nets=%d gates=%d drivers=%d regs=%d instances=%d" t.n_nets
    t.n_gates t.n_drivers t.n_regs t.n_instances
