(** Four-valued abstract interpretation over the compacted class graph.

    A whole-design constant analysis on the flat lattice

    {v ⊥  <  \{0, 1, X, Z\}  <  ⊤ v}

    where the middle layer is the four-valued algebra of {!Zeus_base.Logic}
    (X = UNDEF, Z = NOINFL).  [Const v] means "this class carries exactly
    [v] in every cycle, under every input"; [Top] means the value can
    vary; [Bot] is the unreached initial state (it survives only inside
    combinational cycles, which the static checks reject anyway).

    The interpreter mirrors the simulator's semantics graph: the alias
    union-find is resolved once into dense class ids (the same compaction
    as [Zeus_sim.Graph.build]), producers and consumers are stored as CSR
    adjacency, and a worklist runs the monotone transfer functions to a
    fixpoint:

    - gates evaluate with the simulator's early-firing partial
      evaluators (an AND with a constant-0 input is 0 no matter what);
    - a driver contributes its source under a constant-1 guard, NOINFL
      under a constant-0 guard, UNDEF under a provably-undefined guard
      (an undefined guard {e drives});
    - a multi-driven class joins its producers with the abstract Zeus
      drive resolution: all-constant contributions resolve exactly
      (two driving values are a conflict and force UNDEF, matching the
      runtime check), any varying contribution is ⊤;
    - register feedback is widened across cycles: the output class
      accumulates the power-up value joined with everything the input
      can latch (a NOINFL input keeps the stored value and contributes
      nothing), iterated to a fixpoint.

    Testbench-pokeable classes (top IN/INOUT pins, CLK, RSET) and RANDOM
    sources are ⊤; a producer-less non-input class reads UNDEF forever.

    The result doubles as the proof table of {!Reduce}: every class is
    classified const-0 / const-1 / stuck-X / stuck-Z / varying, together
    with its observability (whether it can reach a register or a root
    output port). *)

open Zeus_base

type av =
  | Bot  (** unreached (combinational cycles only) *)
  | Const of Logic.t  (** exactly this value, every cycle, all inputs *)
  | Top  (** may vary *)

val join : av -> av -> av
val av_to_string : av -> string

type classification =
  | Const0
  | Const1
  | StuckX  (** provably UNDEF every cycle *)
  | StuckZ  (** provably NOINFL (high-impedance) every cycle *)
  | Varying

val classification_to_string : classification -> string

type t = {
  n_classes : int;
  canon : int array;  (** original net id -> dense class id *)
  rep : int array;  (** class id -> representative original net id *)
  value : av array;  (** per class: the fixpoint abstract value *)
  cls : classification array;  (** per class *)
  observable : bool array;
      (** per class: reaches a register input or a root OUT/INOUT pin *)
  input_class : bool array;  (** testbench-pokeable (never constant) *)
  reg_out_class : bool array;  (** sequential state (never folded) *)
  producers : int array;  (** gate + driver count per class *)
  steps : int;  (** worklist class evaluations until the fixpoint *)
}

val analyze : Elaborate.design -> t

(** Abstract value / classification of an original net id (resolved
    through the alias class). *)
val value_of_net : t -> int -> av

val classification_of_net : t -> int -> classification

(** [counts t] is [(const0, const1, stuckx, stuckz, varying)]. *)
val counts : t -> int * int * int * int * int

val unobservable_count : t -> int
