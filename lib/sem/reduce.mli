(** Proof-carrying netlist reduction, driven by {!Absint}.

    A cone-of-influence rewrite of the elaborated netlist: nodes whose
    output cannot reach a register or a root OUT/INOUT pin are dropped,
    single-producer classes the abstract interpretation proved constant
    are replaced by one constant driver, constant reads are folded
    through gates (with identity-input pruning: AND(1,x) = x and the
    NAND/NOR duals), guards that fold to 1 become unconditional, and
    unguarded single-producer copies [t := s] are elided by merging the
    two net classes (wire elision — on pure distribution networks like
    the routing benchmark this is most of the netlist).

    The reduced design shares nets and instances with the original
    ({!Netlist.with_nodes_merged}); its alias union-find is a copy,
    extended by the merged copies, so class {e indices} may differ from
    the original's.  Cross-design comparison therefore goes through
    per-net class maps ({!Zeus_sim.Graph}[.canon] of each design):
    oracle row O6 asserts, for every net the analysis marked
    observable, that optimized and unoptimized snapshots agree.

    Soundness notes baked into the rewrite:
    - multi-producer classes are never replaced by a constant, even
      when their resolution is provably constant — the runtime
      multiple-drive check must keep firing exactly as before;
    - register outputs and testbench-pokeable classes are never folded
      (sequential state latches; pins are poked);
    - a never-firing driver (guard provably 0) is dropped only when the
      class keeps another producer — alone it pins the class at NOINFL
      and is kept as the class's single (constant) producer instead;
    - a copy is merged only when its target is not pokeable, not a
      register output, and not a mux net grafted onto a boolean class
      (the merge must not change the source class's firing rule);
    - copy propagation is disabled entirely in designs with a RANDOM
      source: RANDOM streams are keyed by dense class id
      ({!Zeus_sim.Prand}), and any merge renumbers the classes behind
      every stream in the design.

    The rewrite assumes testbench pokes target top-level inputs (CLK,
    RSET, root IN/INOUT pins) — the classes the analysis treats as
    unknown.  Poking an internal net of an optimized simulation may
    observe folded logic. *)

type stats = {
  classes : int;
  const0 : int;
  const1 : int;
  stuckx : int;
  stuckz : int;
  varying : int;
  unobservable : int;
  gates_before : int;
  gates_after : int;
  drivers_before : int;
  drivers_after : int;
  consts_folded : int;  (** classes replaced by a single constant driver *)
  copies_merged : int;
      (** unguarded single-producer copies [t := s] whose target class
          was merged into the source's — wire elision *)
  nets_eliminated : int;
      (** classes that had producers and lost them all (dead cones) *)
  steps : int;  (** abstract-interpretation worklist evaluations *)
}

val pp_stats : stats Fmt.t

type result = {
  design : Elaborate.design;  (** the reduced design *)
  ai : Absint.t;  (** the proof table the reduction was derived from *)
  stats : stats;
}

val run : Elaborate.design -> result

(** A user-facing display name for a class: the first member net whose
    name carries no compiler-internal ['#'], else the representative. *)
val class_name : Elaborate.design -> Absint.t -> int -> string

(** The proof table rows worth showing a human: classes with at least
    one producer that are non-varying or unobservable, in class order —
    [(class id, display name, classification, observable, producers)]. *)
val proof_table :
  result -> (int * string * Absint.classification * bool * int) list

(** The whole proof-carrying artifact as JSON: every class (name,
    classification, observability, producer count) plus the stats
    block.  Schema version 1. *)
val json_of_result : result -> string
