(* Netlist optimization: constant propagation and dead-logic elimination.

   A modest "silicon compiler" pass (section 9's application 3): the
   observable behaviour — register contents and the OUT/INOUT pins of
   root instances — is preserved exactly (a QCheck-tested property);
   internal nets may simplify away.

   Constant propagation is conservative: a net is known constant only
   when every producer forces the same value under all inputs, using
   the same early-firing rules as the simulator (e.g. an AND with one
   constant-0 input is 0 regardless of the rest). *)

open Zeus_base

type report = {
  gates_before : int;
  gates_after : int;
  drivers_before : int;
  drivers_after : int;
  constants_found : int;
}

let pp_report ppf r =
  Fmt.pf ppf "gates %d -> %d, drivers %d -> %d (%d constant nets)"
    r.gates_before r.gates_after r.drivers_before r.drivers_after
    r.constants_found

(* evaluate a gate over (possibly unknown) constant inputs *)
let eval_gate_const op (vals : Logic.t option list) =
  match (op : Netlist.gate_op) with
  | Netlist.Gand -> Logic.and_partial vals
  | Netlist.Gor -> Logic.or_partial vals
  | Netlist.Gnand -> Logic.nand_partial vals
  | Netlist.Gnor -> Logic.nor_partial vals
  | Netlist.Gxor -> Logic.xor_partial vals
  | Netlist.Gnot -> (
      match vals with
      | [ v ] -> Option.map Logic.not_ v
      | _ -> None)
  | Netlist.Gequal ->
      Logic.map_all
        (fun vs ->
          let n = List.length vs / 2 in
          let a = List.filteri (fun i _ -> i < n) vs
          and b = List.filteri (fun i _ -> i >= n) vs in
          List.fold_left2
            (fun acc x y -> Logic.and2 acc (Logic.equal2 x y))
            Logic.One a b)
        vals
  | Netlist.Grandom -> None

(* Conservative constant propagation to a fixpoint over canonical nets:
   a net is known constant only when its single producer forces the same
   value under all inputs.  Exposed for the lint engine's dead-branch
   pass (Z301). *)
let known_constants (design : Elaborate.design) =
  let nl = design.Elaborate.netlist in
  let n = Netlist.net_count nl in
  let canon id = Netlist.canonical nl id in
  (* producer counts per canonical net *)
  let producers = Array.make n 0 in
  List.iter
    (fun (g : Netlist.gate) ->
      producers.(canon g.Netlist.output) <- producers.(canon g.Netlist.output) + 1)
    (Netlist.gates nl);
  List.iter
    (fun (d : Netlist.driver) ->
      producers.(canon d.Netlist.target) <- producers.(canon d.Netlist.target) + 1)
    (Netlist.drivers nl);
  (* testbench-driven nets and register outputs are never constants *)
  let pinned = Array.make n false in
  List.iter (fun id -> pinned.(canon id) <- true) (Check.top_input_nets design);
  List.iter
    (fun (r : Netlist.reg) -> pinned.(canon r.Netlist.rout) <- true)
    (Netlist.regs nl);
  let known : Logic.t option array = Array.make n None in
  let value_of_src = function
    | Netlist.Sconst v -> Some v
    | Netlist.Snet s -> known.(canon s)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    let learn net v =
      let net = canon net in
      if (not pinned.(net)) && producers.(net) = 1 && known.(net) = None then begin
        known.(net) <- Some v;
        changed := true
      end
    in
    List.iter
      (fun (g : Netlist.gate) ->
        match eval_gate_const g.Netlist.op (List.map value_of_src g.Netlist.inputs) with
        | Some v -> learn g.Netlist.output v
        | None -> ())
      (Netlist.gates nl);
    List.iter
      (fun (d : Netlist.driver) ->
        match d.Netlist.guard with
        | None -> (
            match value_of_src d.Netlist.source with
            | Some v -> learn d.Netlist.target v
            | None -> ())
        | Some g -> (
            match Option.map Logic.booleanize (value_of_src g) with
            | Some Logic.Zero -> learn d.Netlist.target Logic.Noinfl
            | Some Logic.One -> (
                match value_of_src d.Netlist.source with
                | Some v -> learn d.Netlist.target v
                | None -> ())
            | Some (Logic.Undef | Logic.Noinfl) ->
                learn d.Netlist.target Logic.Undef
            | None -> ()))
      (Netlist.drivers nl)
  done;
  known

(* Observability (liveness): the canonical ancestors of register inputs
   and root OUT/INOUT pins.  Exposed for the lint engine's
   dead-instance pass (Z302). *)
let observable (design : Elaborate.design) =
  let nl = design.Elaborate.netlist in
  let n = Netlist.net_count nl in
  let canon id = Netlist.canonical nl id in
  let adj = Check.dependency_graph nl in
  let preds = Array.make n [] in
  Array.iteri
    (fun src dsts -> List.iter (fun d -> preds.(d) <- src :: preds.(d)) dsts)
    adj;
  let live = Array.make n false in
  let rec mark v =
    if not live.(v) then begin
      live.(v) <- true;
      List.iter mark preds.(v)
    end
  in
  List.iter (fun (r : Netlist.reg) -> mark (canon r.Netlist.rin)) (Netlist.regs nl);
  List.iter
    (fun (i : Netlist.instance) ->
      if not (String.contains i.Netlist.ipath '.') then
        List.iter
          (fun (_, mode, nets) ->
            match mode with
            | Etype.Out | Etype.Inout -> List.iter (fun id -> mark (canon id)) nets
            | Etype.In -> ())
          i.Netlist.iports)
    (Netlist.instances nl);
  live

let run (design : Elaborate.design) =
  let nl = design.Elaborate.netlist in
  let n = Netlist.net_count nl in
  let canon id = Netlist.canonical nl id in
  let known = known_constants design in
  let value_of_src = function
    | Netlist.Sconst v -> Some v
    | Netlist.Snet s -> known.(canon s)
  in
  let live = observable design in
  (* rebuild: known-constant or dead outputs lose their gates; a known
     net keeps a single constant driver so downstream readers (and
     peeks) still see its value *)
  let rewrite_src s =
    match value_of_src s with
    | Some v -> Netlist.Sconst v
    | None -> s
  in
  let const_driver_emitted = Array.make n false in
  let gates = ref [] and drivers = ref [] and consts = ref 0 in
  let emit_const target v loc =
    let target_c = canon target in
    if not const_driver_emitted.(target_c) then begin
      const_driver_emitted.(target_c) <- true;
      incr consts;
      drivers :=
        {
          Netlist.did = -1;
          target;
          guard = None;
          source = Netlist.Sconst v;
          dloc = loc;
        }
        :: !drivers
    end
  in
  List.iter
    (fun (g : Netlist.gate) ->
      let out = canon g.Netlist.output in
      if not live.(out) then ()
      else
        match known.(out) with
        | Some v -> emit_const g.Netlist.output v g.Netlist.gloc
        | None -> (
            let inputs = List.map rewrite_src g.Netlist.inputs in
            (* identity-input pruning: AND(1,x) = x, OR(0,x) = x, and the
               NAND/NOR duals — e.g. the pattern matcher's literal
               AND(1,EQUAL(p,s)) *)
            let identity v =
              match g.Netlist.op with
              | Netlist.Gand | Netlist.Gnand -> Logic.equal v Logic.One
              | Netlist.Gor | Netlist.Gnor -> Logic.equal v Logic.Zero
              | _ -> false
            in
            let pruned =
              match g.Netlist.op with
              | Netlist.Gand | Netlist.Gnand | Netlist.Gor | Netlist.Gnor ->
                  let keep =
                    List.filter
                      (function
                        | Netlist.Sconst v -> not (identity v)
                        | Netlist.Snet _ -> true)
                      inputs
                  in
                  (* never prune to arity zero *)
                  if keep = [] then inputs else keep
              | _ -> inputs
            in
            match (g.Netlist.op, pruned) with
            | (Netlist.Gnand | Netlist.Gnor), [ single ] ->
                gates :=
                  { g with Netlist.op = Netlist.Gnot; inputs = [ single ] }
                  :: !gates
            | _ ->
                (* a one-input AND/OR stays a gate: it doubles as the
                   implicit amplifier (mux sources booleanize), which a
                   plain forwarding driver would not preserve in front
                   of a register input *)
                gates := { g with Netlist.inputs = pruned } :: !gates))
    (Netlist.gates nl);
  List.iter
    (fun (d : Netlist.driver) ->
      let t = canon d.Netlist.target in
      if not live.(t) then ()
      else
        match known.(t) with
        | Some v -> emit_const d.Netlist.target v d.Netlist.dloc
        | None ->
            let guard =
              match Option.map rewrite_src d.Netlist.guard with
              | Some (Netlist.Sconst v) when Logic.booleanize v = Logic.One ->
                  None
              | g -> g
            in
            drivers :=
              {
                d with
                Netlist.guard;
                source = rewrite_src d.Netlist.source;
              }
              :: !drivers)
    (Netlist.drivers nl);
  let optimized = Netlist.with_nodes nl ~gates:(List.rev !gates) ~drivers:(List.rev !drivers) in
  let report =
    {
      gates_before = List.length (Netlist.gates nl);
      gates_after = List.length (Netlist.gates optimized);
      drivers_before = List.length (Netlist.drivers nl);
      drivers_after = List.length (Netlist.drivers optimized);
      constants_found = !consts;
    }
  in
  ({ design with Elaborate.netlist = optimized }, report)
