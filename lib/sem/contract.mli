(** Port contracts and the abstract domains of the modular summary
    analysis ({!Summary}).

    A contract records, for one component type at one canonical
    parameter signature, everything a parent needs to analyse its own
    body without elaborating the child: per-port drive class,
    UNDEF-capability, sequential dependence and the internal
    combinational port-to-port reachability relation.  Contracts are
    plain marshalable data and feed the persistent on-disk cache. *)

(** {1 Interval / small-set abstraction}

    Over-approximates the integer values a generic parameter, FOR
    variable or constant expression can take.  Small explicit sets
    keep recursive parameter chains such as 16 -> 8 -> 4 -> 2 exact;
    larger sets widen to (possibly half-open) intervals. *)

type ival =
  | Iempty
  | Iset of int list  (** sorted, distinct, small *)
  | Irange of int option * int option  (** inclusive; [None] = unbounded *)

val itop : ival
val iconst : int -> ival
val of_list : int list -> ival

val range : int option -> int option -> ival
(** Normalizes: an empty range is [Iempty], a small one an [Iset]. *)

val is_empty : ival -> bool
val singleton : ival -> int option
val lo_of : ival -> int option
val hi_of : ival -> int option
val mem : int -> ival -> bool
val join : ival -> ival -> ival
val equal_ival : ival -> ival -> bool

val iadd : ival -> ival -> ival
val isub : ival -> ival -> ival
val ineg : ival -> ival
val imul : ival -> ival -> ival

val idiv : ival -> ival -> ival
(** Truncating division, matching {!Const_eval}; widens to top when the
    divisor may be zero. *)

val imod : ival -> ival -> ival

(** Three-valued truth of comparisons between abstract values. *)
type truth = True | False | Unknown

val tnot : truth -> truth
val cmp_lt : ival -> ival -> truth
val cmp_le : ival -> ival -> truth
val cmp_eq : ival -> ival -> truth

(** [refine_lt v w] over-approximates [{ x in v | exists y in w, x < y }]
    — used to narrow a formal's interval inside a WHEN arm. *)
val refine_lt : ival -> ival -> ival

val refine_le : ival -> ival -> ival
val refine_gt : ival -> ival -> ival
val refine_ge : ival -> ival -> ival
val refine_eq : ival -> ival -> ival
val refine_ne : ival -> ival -> ival
val ival_to_string : ival -> string

(** {1 Linear expressions over opaque terms}

    [k + sum coeff*term] where terms stand for formals, FOR-variable
    instances or hash-consed non-affine subexpressions ([n DIV 2]).
    Symbolic differences decide index-disjointness questions —
    [output[i]] vs [output[i + n DIV 2]] — for every parameter value. *)
module Lin : sig
  type t = { k : int; terms : (int * int) list }
  (** terms sorted by id, coefficients nonzero *)

  val const : int -> t
  val term : ?coeff:int -> int -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val scale : int -> t -> t
  val is_const : t -> bool
  val const_val : t -> int option
  val equal : t -> t -> bool
  val vars : t -> int list
  val coeff_of : int -> t -> int
  val mentions : int -> t -> bool

  val to_key : t -> string
  (** Canonical string form, for hashing/deduplication. *)
end

(** {1 The contract proper} *)

type mode = In | Out | Inout

val mode_to_string : mode -> string

type drive_class =
  | Never  (** the type itself puts no driver on this port *)
  | Always  (** at least one unconditional whole-port driver *)
  | Cond of string list  (** conditional; support set of the guards *)

val drive_class_to_string : drive_class -> string

type port = {
  p_name : string;
  p_mode : mode;
  p_drive : drive_class;
  p_undef : bool;  (** the port can carry UNDEF (or a high-Z gap) *)
  p_seq : bool;  (** the port's value flows through a register *)
}

type t = {
  c_type : string;  (** component type name *)
  c_params : string;  (** canonical parameter signature, printable *)
  c_ports : port list;
  c_reach : (string * string) list;
      (** internal combinational reachability: (in-port, out-port) *)
  c_conflict_safe : bool;  (** every internal drive target proved exclusive *)
  c_cycle_free : bool;  (** no type-level combinational cycle found *)
  c_fallback : string list;  (** reasons the summary is too coarse *)
}

val port : t -> string -> port option

val bottom :
  type_name:string -> params:string -> ports:(string * mode) list -> t
(** The starting iterate of the recursive fixpoint — claims nothing;
    iteration only grows it. *)

val top :
  type_name:string ->
  params:string ->
  ports:(string * mode) list ->
  reason:string ->
  t
(** Knows nothing: every port conditionally drives, carries UNDEF, is
    sequential; full reachability; no safety claims.  Used when the
    fixpoint diverges or a construct defeats the abstraction. *)

val pp : Format.formatter -> t -> unit

(** {1 Persistent on-disk cache}

    One marshalled file per (source digest, type, parameter signature)
    under a cache directory.  The digest keys the whole canonical
    pretty-printed compilation unit: any edit invalidates every entry
    for that program.  Files carry a format version and the OCaml
    version; a mismatch (or any read error) is a miss. *)
module Cache : sig
  val format_version : int

  type payload = {
    pl_contract : t;
    pl_findings : Zeus_base.Diag.t list;
  }

  val source_digest : string -> string
  (** Hex digest of the canonical source text. *)

  val key : digest:string -> type_name:string -> params:string -> string
  val load : dir:string -> key:string -> payload option

  val store : dir:string -> key:string -> payload -> unit
  (** Atomic (write-then-rename); failures are silently a cache miss. *)
end
