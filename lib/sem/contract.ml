(* Port contracts for the modular summary analysis (Summary).

   A contract is everything a parent needs to know about a component
   type in order to analyse its own body without elaborating the
   child: per-port drive class (never / always / conditionally, with
   the guard's support set), UNDEF-capability, sequential dependence
   (the port's value flows through a register) and the internal
   combinational port-to-port reachability relation.  Contracts are
   plain data — no closures — so they marshal into the on-disk cache.

   The module also hosts the two abstract domains the analysis runs
   over:

   - [ival], an interval/small-set abstraction of the integer values a
     generic parameter (or FOR variable, or constant expression) can
     take.  Small sets keep recursive parameter chains like
     16 -> 8 -> 4 -> 2 exact; widening falls back to intervals.
   - [Lin], linear expressions over opaque terms (formals, FOR
     variables, hash-consed non-affine subexpressions such as
     [n DIV 2]).  Symbolic differences of Lins decide array-index
     disjointness questions like [output[i]] vs [output[i + n DIV 2]]
     for *every* parameter value, which plain intervals cannot. *)

(* ------------------------------------------------------------------ *)
(* Interval / small-set abstraction of parameter values                 *)
(* ------------------------------------------------------------------ *)

(* how many concrete values a set may hold before widening to a range *)
let max_set = 16

type ival =
  | Iempty
  | Iset of int list (* sorted, distinct, length <= max_set *)
  | Irange of int option * int option (* inclusive; None = unbounded *)

let itop = Irange (None, None)
let iconst n = Iset [ n ]
let of_list l = Iset (List.sort_uniq compare l)
let is_empty = function Iempty -> true | _ -> false

let lo_of = function
  | Iempty -> None
  | Iset (x :: _) -> Some x
  | Iset [] -> None
  | Irange (lo, _) -> lo

let hi_of = function
  | Iempty -> None
  | Iset l -> ( match List.rev l with x :: _ -> Some x | [] -> None)
  | Irange (_, hi) -> hi

let singleton = function Iset [ n ] -> Some n | _ -> None

let range lo hi =
  match (lo, hi) with
  | Some a, Some b when a > b -> Iempty
  | Some a, Some b when b - a < max_set ->
      Iset (List.init (b - a + 1) (fun i -> a + i))
  | lo, hi -> Irange (lo, hi)

let mem n = function
  | Iempty -> false
  | Iset l -> List.mem n l
  | Irange (lo, hi) ->
      (match lo with None -> true | Some a -> n >= a)
      && match hi with None -> true | Some b -> n <= b

let to_range = function
  | Iempty -> Iempty
  | Iset _ as s -> Irange (lo_of s, hi_of s)
  | r -> r

let join a b =
  match (a, b) with
  | Iempty, x | x, Iempty -> x
  | Iset xa, Iset xb ->
      let u = List.sort_uniq compare (xa @ xb) in
      if List.length u <= max_set then Iset u
      else
        range
          (match u with x :: _ -> Some x | [] -> None)
          (match List.rev u with x :: _ -> Some x | [] -> None)
  | a, b ->
      let a = to_range a and b = to_range b in
      let min_opt x y =
        match (x, y) with Some x, Some y -> Some (min x y) | _ -> None
      in
      let max_opt x y =
        match (x, y) with Some x, Some y -> Some (max x y) | _ -> None
      in
      Irange
        ( min_opt (lo_of a) (lo_of b),
          max_opt (hi_of a) (hi_of b) )

let equal_ival (a : ival) (b : ival) = a = b

(* pointwise lift of a total binary operation; ranges go through
   endpoint analysis for the monotone cases and widen otherwise *)
let lift2 f a b =
  match (a, b) with
  | Iempty, _ | _, Iempty -> Iempty
  | Iset xa, Iset xb when List.length xa * List.length xb <= 64 ->
      of_list (List.concat_map (fun x -> List.map (f x) xb) xa)
  | a, b -> (
      (* endpoint evaluation: sound for monotone f in each argument;
         callers that are not monotone must not use lift2 *)
      let cands =
        [ (lo_of a, lo_of b); (lo_of a, hi_of b); (hi_of a, lo_of b);
          (hi_of a, hi_of b) ]
      in
      let vals =
        List.filter_map
          (function Some x, Some y -> Some (f x y) | _ -> None)
          cands
      in
      match vals with
      | [] -> itop
      | vs ->
          let lo = List.fold_left min (List.hd vs) vs
          and hi = List.fold_left max (List.hd vs) vs in
          let lo = if lo_of a = None || lo_of b = None then None else Some lo
          and hi = if hi_of a = None || hi_of b = None then None else Some hi in
          (* unbounded inputs may widen either end depending on sign;
             be conservative: any unbounded operand unbounds both ends
             unless both operands are bounded *)
          if lo = None || hi = None then Irange (None, None)
          else range lo hi)

let iadd = lift2 ( + )
let isub a b = lift2 ( + ) a (lift2 (fun _ y -> -y) (iconst 0) b)
let ineg v = isub (iconst 0) v

let imul a b =
  match (singleton a, singleton b) with
  | Some 0, _ | _, Some 0 -> iconst 0
  | _ -> lift2 ( * ) a b

(* OCaml division truncates toward zero, matching Const_eval *)
let idiv a b =
  match b with
  | Iset l when List.mem 0 l -> itop (* division by zero aborts; stay sound *)
  | Iempty -> Iempty
  | _ when mem 0 b -> itop
  | _ -> lift2 (fun x y -> if y = 0 then 0 else x / y) a b

let imod a b =
  if is_empty a || is_empty b then Iempty
  else if mem 0 b then itop
  else
    match (singleton a, singleton b) with
    | Some x, Some y when y <> 0 -> iconst (x mod y)
    | _ -> (
        match hi_of b with
        | Some m when m > 0 -> range (Some (-(m - 1))) (Some (m - 1))
        | _ -> itop)

(* three-valued comparison *)
type truth = True | False | Unknown

let tnot = function True -> False | False -> True | Unknown -> Unknown

let cmp_lt a b =
  match (hi_of a, lo_of b) with
  | Some ha, Some lb when ha < lb -> True
  | _ -> (
      match (lo_of a, hi_of b) with
      | Some la, Some hb when la >= hb -> False
      | _ -> Unknown)

let cmp_le a b =
  match (hi_of a, lo_of b) with
  | Some ha, Some lb when ha <= lb -> True
  | _ -> (
      match (lo_of a, hi_of b) with
      | Some la, Some hb when la > hb -> False
      | _ -> Unknown)

let cmp_eq a b =
  match (singleton a, singleton b) with
  | Some x, Some y -> if x = y then True else False
  | _ ->
      if is_empty a || is_empty b then Unknown
      else if cmp_lt a b = True || cmp_lt b a = True then False
      else Unknown

(* refine [v] by [v <rel> w]; sound: result over-approximates the
   concrete values of v satisfying the relation *)
let refine_lt v w =
  match hi_of w with
  | None -> v
  | Some hw -> (
      match v with
      | Iset l -> of_list (List.filter (fun x -> x < hw) l)
      | _ -> (
          let cap = hw - 1 in
          match hi_of v with
          | Some hv when hv <= cap -> v
          | _ -> range (lo_of v) (Some cap)))

let refine_le v w =
  match hi_of w with
  | None -> v
  | Some hw -> (
      match v with
      | Iset l -> of_list (List.filter (fun x -> x <= hw) l)
      | _ -> (
          match hi_of v with
          | Some hv when hv <= hw -> v
          | _ -> range (lo_of v) (Some hw)))

let refine_gt v w =
  match lo_of w with
  | None -> v
  | Some lw -> (
      match v with
      | Iset l -> of_list (List.filter (fun x -> x > lw) l)
      | _ -> (
          let floor = lw + 1 in
          match lo_of v with
          | Some lv when lv >= floor -> v
          | _ -> range (Some floor) (hi_of v)))

let refine_ge v w =
  match lo_of w with
  | None -> v
  | Some lw -> (
      match v with
      | Iset l -> of_list (List.filter (fun x -> x >= lw) l)
      | _ -> (
          match lo_of v with
          | Some lv when lv >= lw -> v
          | _ -> range (Some lw) (hi_of v)))

let refine_eq v w =
  match singleton w with
  | Some n -> if mem n v then iconst n else Iempty
  | None -> refine_le (refine_ge v w) w

let refine_ne v w =
  match (v, singleton w) with
  | Iset l, Some n -> of_list (List.filter (fun x -> x <> n) l)
  | Irange (Some a, hi), Some n when n = a -> range (Some (a + 1)) hi
  | Irange (lo, Some b), Some n when n = b -> range lo (Some (b - 1))
  | v, _ -> v

let ival_to_string = function
  | Iempty -> "{}"
  | Iset [ n ] -> string_of_int n
  | Iset l -> "{" ^ String.concat "," (List.map string_of_int l) ^ "}"
  | Irange (None, None) -> "any"
  | Irange (lo, hi) ->
      let b = function None -> "" | Some n -> string_of_int n in
      "[" ^ b lo ^ ".." ^ b hi ^ "]"

(* ------------------------------------------------------------------ *)
(* Linear expressions over opaque terms                                 *)
(* ------------------------------------------------------------------ *)

module Lin = struct
  (* k + sum (coeff * term); terms sorted by id, coeffs nonzero *)
  type t = { k : int; terms : (int * int) list }

  let const k = { k; terms = [] }
  let term ?(coeff = 1) id = { k = 0; terms = (if coeff = 0 then [] else [ (id, coeff) ]) }

  let rec merge a b =
    match (a, b) with
    | [], l | l, [] -> l
    | (ia, ca) :: ra, (ib, cb) :: rb ->
        if ia < ib then (ia, ca) :: merge ra b
        else if ib < ia then (ib, cb) :: merge a rb
        else
          let c = ca + cb in
          if c = 0 then merge ra rb else (ia, c) :: merge ra rb

  let add a b = { k = a.k + b.k; terms = merge a.terms b.terms }

  let scale s a =
    if s = 0 then const 0
    else { k = s * a.k; terms = List.map (fun (i, c) -> (i, s * c)) a.terms }

  let sub a b = add a (scale (-1) b)
  let is_const a = a.terms = []
  let const_val a = if is_const a then Some a.k else None
  let equal a b = a = b

  (* variables (term ids) occurring in the expression *)
  let vars a = List.map fst a.terms
  let coeff_of id a = try List.assoc id a.terms with Not_found -> 0
  let mentions id a = coeff_of id a <> 0

  let to_key a =
    String.concat "+"
      (string_of_int a.k
      :: List.map (fun (i, c) -> Printf.sprintf "%d*t%d" c i) a.terms)
end

(* ------------------------------------------------------------------ *)
(* The contract proper                                                  *)
(* ------------------------------------------------------------------ *)

type mode = In | Out | Inout

let mode_to_string = function In -> "IN" | Out -> "OUT" | Inout -> "INOUT"

type drive_class =
  | Never (* the type itself puts no driver on this port *)
  | Always (* at least one unconditional whole-port driver *)
  | Cond of string list (* conditional; support set of the guards *)

let drive_class_to_string = function
  | Never -> "never-drives"
  | Always -> "always-drives"
  | Cond [] -> "cond-drives"
  | Cond s -> "cond-drives{" ^ String.concat "," s ^ "}"

type port = {
  p_name : string;
  p_mode : mode;
  p_drive : drive_class;
  p_undef : bool; (* the port can carry UNDEF (or a high-Z gap) *)
  p_seq : bool; (* the port's value flows through a register *)
}

type t = {
  c_type : string; (* component type name *)
  c_params : string; (* canonical parameter signature, printable *)
  c_ports : port list;
  c_reach : (string * string) list;
      (* internal combinational reachability: (in-port, out-port) *)
  c_conflict_safe : bool; (* every internal drive target proved exclusive *)
  c_cycle_free : bool; (* no type-level combinational cycle found *)
  c_fallback : string list; (* reasons the summary is too coarse *)
}

let port c name = List.find_opt (fun p -> p.p_name = name) c.c_ports

(* the starting iterate of the recursive fixpoint: the bottom of the
   lattice — claims nothing drives, nothing reaches, everything fine;
   iteration only ever grows it *)
let bottom ~type_name ~params ~ports =
  {
    c_type = type_name;
    c_params = params;
    c_ports =
      List.map
        (fun (name, mode) ->
          { p_name = name; p_mode = mode; p_drive = Never; p_undef = false;
            p_seq = false })
        ports;
    c_reach = [];
    c_conflict_safe = true;
    c_cycle_free = true;
    c_fallback = [];
  }

(* the top: claims nothing is known — used when iteration diverges *)
let top ~type_name ~params ~ports ~reason =
  {
    c_type = type_name;
    c_params = params;
    c_ports =
      List.map
        (fun (name, mode) ->
          { p_name = name; p_mode = mode; p_drive = Cond []; p_undef = true;
            p_seq = true })
        ports;
    c_reach =
      List.concat_map
        (fun (i, mi) ->
          match mi with
          | Out -> []
          | In | Inout ->
              List.filter_map
                (fun (o, mo) ->
                  match mo with Out | Inout -> Some (i, o) | In -> None)
                ports)
        ports;
    c_conflict_safe = false;
    c_cycle_free = false;
    c_fallback = [ reason ];
  }

let pp ppf c =
  Fmt.pf ppf "@[<v2>%s(%s):%s%s@ %a@ reach: %s@]" c.c_type
    (if c.c_params = "" then "-" else c.c_params)
    (if c.c_conflict_safe then " conflict-safe" else "")
    (if c.c_cycle_free then " cycle-free" else "")
    (Fmt.list ~sep:Fmt.sp (fun ppf p ->
         Fmt.pf ppf "%s %s: %s%s%s" (mode_to_string p.p_mode) p.p_name
           (drive_class_to_string p.p_drive)
           (if p.p_undef then " undef" else "")
           (if p.p_seq then " seq" else "")))
    c.c_ports
    (String.concat " "
       (List.map (fun (a, b) -> a ^ "->" ^ b) c.c_reach))

(* ------------------------------------------------------------------ *)
(* Persistent on-disk cache                                             *)
(* ------------------------------------------------------------------ *)

(* One marshalled file per (source digest, type, parameter signature).
   The source digest keys the whole pretty-printed compilation unit, so
   any edit anywhere invalidates every entry for that program — coarse
   but impossible to get wrong; the memoized in-process table provides
   the fine-grained sharing.  A version stamp plus the OCaml version
   guard against unmarshalling foreign data. *)
module Cache = struct
  let format_version = 1

  type payload = {
    pl_contract : t;
    pl_findings : Zeus_base.Diag.t list;
  }

  type file = {
    f_magic : string;
    f_version : int;
    f_ocaml : string;
    f_payload : payload;
  }

  let magic = "zeus-summary-cache"

  let source_digest src = Digest.to_hex (Digest.string src)

  let path ~dir ~key = Filename.concat dir ("summary-" ^ key ^ ".bin")

  let key ~digest ~type_name ~params =
    Digest.to_hex
      (Digest.string (String.concat "\x00" [ digest; type_name; params ]))

  let load ~dir ~key : payload option =
    let file = path ~dir ~key in
    if not (Sys.file_exists file) then None
    else
      try
        let ic = open_in_bin file in
        let f : file =
          Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
              Marshal.from_channel ic)
        in
        if
          f.f_magic = magic && f.f_version = format_version
          && f.f_ocaml = Sys.ocaml_version
        then Some f.f_payload
        else None
      with _ -> None

  let store ~dir ~key payload =
    try
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let file = path ~dir ~key in
      let tmp = file ^ ".tmp" in
      let oc = open_out_bin tmp in
      Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
          Marshal.to_channel oc
            { f_magic = magic; f_version = format_version;
              f_ocaml = Sys.ocaml_version; f_payload = payload }
            []);
      Sys.rename tmp file
    with _ -> () (* a cache that cannot write is just a miss *)
end
