(** Netlist optimization: conservative constant propagation plus
    dead-logic elimination.  The observable behaviour — register
    contents and the OUT/INOUT pins of root instances — is preserved
    exactly (a tested property); internal nets may simplify away. *)

type report = {
  gates_before : int;
  gates_after : int;
  drivers_before : int;
  drivers_after : int;
  constants_found : int;
}

val pp_report : report Fmt.t

(** Evaluate one gate over (possibly unknown) constant inputs with the
    simulator's early-firing rules — [Some v] only when the output is
    forced under all inputs.  Shared with the abstract interpreter
    ({!Absint}). *)
val eval_gate_const :
  Netlist.gate_op -> Zeus_base.Logic.t option list -> Zeus_base.Logic.t option

(** Conservative constant propagation: per {e original} net id (look up
    through {!Netlist.canonical}), the value the net is forced to under
    all inputs, or [None].  Testbench inputs and register outputs are
    never constant.  Shared with the lint engine's dead-branch pass. *)
val known_constants : Elaborate.design -> Zeus_base.Logic.t option array

(** Liveness per canonical net: [true] iff the net (transitively) feeds
    a register input or an OUT/INOUT pin of a root instance.  Shared
    with the lint engine's dead-instance pass. *)
val observable : Elaborate.design -> bool array

(** Returns a design sharing nets/instances with the input but with
    simplified gates and drivers, plus the reduction report. *)
val run : Elaborate.design -> Elaborate.design * report
