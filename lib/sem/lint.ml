(* The lint engine: static proofs about the elaborated netlist.

   The paper's central claim (section 4.7) is that Zeus's static rules
   exist to rule out power-ground shorts, that deciding the residual
   problem — "is every multiplex net driven at most once per cycle?" —
   is NP-complete, and that the check therefore splits into a static
   part plus a runtime fallback.  This module is that static part:

   1. Drive-conflict prover (Z101/Z102).  For every net with more than
      one producer, the guard of each conditional driver is expanded
      into a boolean formula over *free* variables (testbench inputs,
      register outputs, RANDOM sources) by walking the netlist
      backwards through gates and unconditional forwarding drivers.
      Each pair of producers is then checked for mutual exclusivity
      with a DPLL-style case-splitting solver under a configurable
      split budget (honouring the NP-completeness result: we buy
      completeness up to the budget, never beyond).  A net is

      - [safe]   every pair proved mutually exclusive;
      - [conflict] some pair is satisfiable with a witness over free
        variables only — the environment (or a power-up register
        state, which is UNDEF and hence arbitrary) can realize it;
      - [needs-runtime-check] the budget ran out, or exclusivity
        depends on something the expansion cannot see (multi-driven
        guard nets, UNDEF-capable guards, combinational cycles).

      The prover works in the two-valued abstraction: guards are
      assumed to evaluate to 0 or 1.  Guards that can read UNDEF are
      never proved safe (they are demoted to needs-runtime-check, and
      the UNDEF pass reports them separately).  "Can read UNDEF"
      includes sequential state: a guard over a register output is only
      proved safe when the value-set analysis of pass 2 shows the
      register can never hold UNDEF — at power-up a register reads
      UNDEF unless REG(c) gave it a constant, and an undefined guard
      *drives* (UNDEF), so g and NOT g both fire when g is undefined.

   2. UNDEF-reachability (Z201/Z202).  A value-set dataflow analysis
      over the four-valued algebra of Logic: every net gets the set of
      values it can ever carry, computed to a fixpoint from the inputs,
      register power-up values and gate/driver transfer functions.
      Nets that are read but can only ever read UNDEF are reported:
      undriven (Z201) or driven-but-never-defined (Z202).

   3. Dead hardware (Z301/Z302).  Drivers whose guard is statically
      false after constant propagation (a conditional branch surviving
      elaboration that can never fire), and instances none of whose
      outputs can reach a register or a root output port.

   4. Abstract interpretation (Z501/Z502/Z503).  The four-valued
      constant fixpoint of Absint — the proof table zeusc opt reduces
      by — surfaced as findings: nets provably constant every cycle
      (Z501), nets provably stuck at UNDEF or floating every cycle
      where the coarser value-set pass stayed silent (Z502, e.g. a
      guaranteed drive conflict whose resolution is exactly UNDEF), and
      driven nets that reach nothing observable (Z503; nets under an
      instance already reported dead by Z302, and '*'-starred nets, are
      skipped).

   Findings carry the stable codes of Diag.Code; the simulator's
   runtime multiple-drive check reports Z101 for the violations this
   prover could not exclude, so static and dynamic findings correlate. *)

open Zeus_base

type classification =
  | Safe
  | Safe_sequential
  | Conflict
  | Needs_runtime_check

let classification_to_string = function
  | Safe -> "safe"
  | Safe_sequential -> "safe-sequential"
  | Conflict -> "conflict"
  | Needs_runtime_check -> "needs-runtime-check"

type net_verdict = {
  v_net : int; (* canonical net id *)
  v_name : string;
  v_kind : Etype.kind;
  v_producers : int;
  v_class : classification;
  v_detail : string; (* witness / proof summary / reason *)
}

type report = {
  verdicts : net_verdict list; (* every multi-driven class, by net id *)
  findings : Diag.t list;
  splits : int; (* total case splits spent by the solver *)
}

(* ------------------------------------------------------------------ *)
(* Boolean formulas over netlist nets                                   *)
(* ------------------------------------------------------------------ *)

(* [Bvar] is a free variable (testbench input, register output, RANDOM
   source): a witness over free variables only is realizable.  [Bopq]
   is an opaque variable — a net the expansion could not reduce.  The
   solver may case-split on opaque variables (sound for UNSAT), but a
   witness that assigns one proves nothing. *)
type bexp =
  | Btrue
  | Bfalse
  | Bvar of int
  | Bopq of int
  | Bnot of bexp
  | Band of bexp list
  | Bor of bexp list
  | Bxor of bexp * bexp

let bnot = function
  | Btrue -> Bfalse
  | Bfalse -> Btrue
  | Bnot e -> e
  | e -> Bnot e

let band es =
  let es =
    List.concat_map
      (function Band l -> l | Btrue -> [] | e -> [ e ])
      es
  in
  if List.mem Bfalse es then Bfalse
  else match es with [] -> Btrue | [ e ] -> e | es -> Band es

let bor es =
  let es =
    List.concat_map (function Bor l -> l | Bfalse -> [] | e -> [ e ]) es
  in
  if List.mem Btrue es then Btrue
  else match es with [] -> Bfalse | [ e ] -> e | es -> Bor es

let bxor a b =
  match (a, b) with
  | Bfalse, e | e, Bfalse -> e
  | Btrue, e | e, Btrue -> bnot e
  | a, b -> Bxor (a, b)

let rec exists_var p = function
  | Btrue | Bfalse -> false
  | Bvar v -> p v false
  | Bopq v -> p v true
  | Bnot e -> exists_var p e
  | Band l | Bor l -> List.exists (exists_var p) l
  | Bxor (a, b) -> exists_var p a || exists_var p b

(* ------------------------------------------------------------------ *)
(* Guard expansion                                                      *)
(* ------------------------------------------------------------------ *)

type expander = {
  nl : Netlist.t;
  gates_of : int list array; (* canonical net -> gate indices *)
  drivers_of : int list array; (* canonical net -> driver indices *)
  gate_arr : Netlist.gate array;
  driver_arr : Netlist.driver array;
  free_root : bool array; (* canonical: input / reg out / RANDOM *)
  undef_roots : (int, unit) Hashtbl.t; (* opaques that can read UNDEF *)
  memo : (int, bexp) Hashtbl.t;
  busy : (int, unit) Hashtbl.t;
  mutable nodes : int; (* formula nodes built so far (size cap) *)
  mutable fresh_opq : int; (* negative ids for constant-UNDEF leaves *)
}

(* keep formulas bounded: past this many nodes, leaves become opaque *)
let expansion_cap = 50_000

let make_expander design =
  let nl = design.Elaborate.netlist in
  let n = Netlist.net_count nl in
  let canon id = Netlist.canonical nl id in
  let gate_arr = Array.of_list (Netlist.gates nl) in
  let driver_arr = Array.of_list (Netlist.drivers nl) in
  let gates_of = Array.make n [] in
  Array.iteri
    (fun i (g : Netlist.gate) ->
      let c = canon g.Netlist.output in
      gates_of.(c) <- i :: gates_of.(c))
    gate_arr;
  let drivers_of = Array.make n [] in
  Array.iteri
    (fun i (d : Netlist.driver) ->
      let c = canon d.Netlist.target in
      drivers_of.(c) <- i :: drivers_of.(c))
    driver_arr;
  let free_root = Array.make n false in
  List.iter (fun id -> free_root.(canon id) <- true) (Check.top_input_nets design);
  List.iter
    (fun (r : Netlist.reg) -> free_root.(canon r.Netlist.rout) <- true)
    (Netlist.regs nl);
  Array.iter
    (fun (g : Netlist.gate) ->
      if g.Netlist.op = Netlist.Grandom then
        free_root.(canon g.Netlist.output) <- true)
    gate_arr;
  {
    nl;
    gates_of;
    drivers_of;
    gate_arr;
    driver_arr;
    free_root;
    undef_roots = Hashtbl.create 16;
    memo = Hashtbl.create 256;
    busy = Hashtbl.create 16;
    nodes = 0;
    fresh_opq = 0;
  }

(* read-only views for the sequential prover (Seqprove) *)
let expander_netlist st = st.nl
let is_free_root st c = c >= 0 && c < Array.length st.free_root && st.free_root.(c)
let is_undef_root st v = Hashtbl.mem st.undef_roots v

let rec expand st id =
  let c = Netlist.canonical st.nl id in
  match Hashtbl.find_opt st.memo c with
  | Some e -> e
  | None ->
      let e =
        if Hashtbl.mem st.busy c then Bopq c (* combinational cycle *)
        else if st.free_root.(c) then Bvar c
        else begin
          Hashtbl.add st.busy c ();
          let e =
            if st.nodes > expansion_cap then Bopq c
            else
              match (st.gates_of.(c), st.drivers_of.(c)) with
              | [ gi ], [] -> expand_gate st st.gate_arr.(gi)
              | [], [ di ] -> (
                  let d = st.driver_arr.(di) in
                  match d.Netlist.guard with
                  | None -> expand_src st d.Netlist.source
                  | Some _ -> Bopq c (* value can be NOINFL/UNDEF *))
              | [], [] ->
                  (* undriven: always reads UNDEF *)
                  Hashtbl.replace st.undef_roots c ();
                  Bopq c
              | _ -> Bopq c (* multi-driven: resolution is not boolean *)
          in
          Hashtbl.remove st.busy c;
          e
        end
      in
      st.nodes <- st.nodes + 1;
      Hashtbl.replace st.memo c e;
      e

and expand_src st = function
  | Netlist.Sconst v -> (
      match Logic.booleanize v with
      | Logic.One -> Btrue
      | Logic.Zero -> Bfalse
      | _ ->
          (* a literal UNDEF: never provable either way *)
          st.fresh_opq <- st.fresh_opq - 1;
          Hashtbl.replace st.undef_roots st.fresh_opq ();
          Bopq st.fresh_opq)
  | Netlist.Snet id -> expand st id

and expand_gate st (g : Netlist.gate) =
  let ins () = List.map (expand_src st) g.Netlist.inputs in
  match g.Netlist.op with
  | Netlist.Gand -> band (ins ())
  | Netlist.Gor -> bor (ins ())
  | Netlist.Gnand -> bnot (band (ins ()))
  | Netlist.Gnor -> bnot (bor (ins ()))
  | Netlist.Gnot -> (
      match ins () with [ e ] -> bnot e | _ -> Bopq (Netlist.canonical st.nl g.Netlist.output))
  | Netlist.Gxor -> (
      match ins () with
      | [] -> Bfalse
      | e :: rest -> List.fold_left bxor e rest)
  | Netlist.Gequal ->
      let vs = ins () in
      let len = List.length vs in
      if len mod 2 <> 0 then Bopq (Netlist.canonical st.nl g.Netlist.output)
      else
        let a = List.filteri (fun i _ -> i < len / 2) vs
        and b = List.filteri (fun i _ -> i >= len / 2) vs in
        band (List.map2 (fun x y -> bnot (bxor x y)) a b)
  | Netlist.Grandom -> Bvar (Netlist.canonical st.nl g.Netlist.output)

(* ------------------------------------------------------------------ *)
(* The bounded solver                                                   *)
(* ------------------------------------------------------------------ *)

type sat_result =
  | Unsat
  | Sat of (int * bool) list (* the assigned variables at the leaf *)
  | Budget_out

exception Out_of_budget

(* [budget] bounds the case splits of this one call (one driver pair);
   [splits] accumulates the grand total for the report *)
let solve ~budget ~splits e =
  let spent = ref 0 in
  let env : (int, bool) Hashtbl.t = Hashtbl.create 16 in
  let rec eval e =
    match e with
    | Btrue | Bfalse -> e
    | Bvar v | Bopq v -> (
        match Hashtbl.find_opt env v with
        | Some true -> Btrue
        | Some false -> Bfalse
        | None -> e)
    | Bnot a -> bnot (eval a)
    | Band l -> band (List.map eval l)
    | Bor l -> bor (List.map eval l)
    | Bxor (a, b) -> bxor (eval a) (eval b)
  in
  (* split on a free variable when one is left, otherwise on an opaque *)
  let pick e =
    let first_free = ref None and first_opq = ref None in
    let rec go e =
      !first_free = None
      &&
      match e with
      | Btrue | Bfalse -> true
      | Bvar v ->
          first_free := Some v;
          false
      | Bopq v ->
          if !first_opq = None then first_opq := Some v;
          true
      | Bnot a -> go a
      | Band l | Bor l -> List.for_all go l
      | Bxor (a, b) -> go a && go b
    in
    ignore (go e);
    match (!first_free, !first_opq) with
    | Some v, _ -> v
    | None, Some v -> v
    | None, None -> invalid_arg "Lint.solve: no variable in open formula"
  in
  let rec go e =
    match eval e with
    | Btrue ->
        Some (Hashtbl.fold (fun k v acc -> (k, v) :: acc) env [])
    | Bfalse -> None
    | e' ->
        if !spent >= budget then raise Out_of_budget;
        incr spent;
        incr splits;
        let v = pick e' in
        Hashtbl.replace env v true;
        let r =
          match go e' with
          | Some m -> Some m
          | None ->
              Hashtbl.replace env v false;
              go e'
        in
        Hashtbl.remove env v;
        r
  in
  try match go e with Some m -> Sat m | None -> Unsat
  with Out_of_budget -> Budget_out

(* ------------------------------------------------------------------ *)
(* Pass 1: the drive-conflict prover                                    *)
(* ------------------------------------------------------------------ *)

(* a producer of a net class: a driver (with its drive condition) or a
   gate (which always drives) *)
type producer = {
  pr_cond : bexp;
  pr_loc : Loc.t;
}

(* the condition under which a driver produces a driving (non-NOINFL)
   value: its guard is 1 — or undefined, which also drives (UNDEF) *)
let drive_cond st = function
  | None -> Btrue
  | Some (Netlist.Sconst v) -> (
      match Logic.booleanize v with
      | Logic.Zero -> Bfalse
      | _ -> Btrue (* 1 drives the source; UNDEF drives UNDEF *))
  | Some (Netlist.Snet id) -> expand st id

let witness_to_string nl m =
  let free =
    List.filter_map
      (fun (v, b) ->
        if v >= 0 then Some ((Netlist.net nl v).Netlist.name, b) else None)
      m
  in
  let free = List.sort (fun (a, _) (b, _) -> compare a b) free in
  String.concat ", "
    (List.map (fun (n, b) -> Printf.sprintf "%s=%d" n (if b then 1 else 0)) free)

(* The modular fast path.  [proven_safe] names component types whose
   summaries (Summary.analyze) proved every drive target exclusive for
   the instantiated parameters.  A canonical class may be skipped when
   every member net lives under an instance chain of proven types: a
   net internal to an instance can only be driven by that instance's
   own type, and a port net additionally by the instantiating parent —
   both of which the chain covers.  Nets outside any instance (CLK,
   RSET) are never skipped; the global scope holds declarations only,
   so it contributes no drivers of its own. *)
let modular_skip (design : Elaborate.design) proven_safe =
  let nl = design.Elaborate.netlist in
  let n = Netlist.net_count nl in
  let canon id = Netlist.canonical nl id in
  let type_of_path = Hashtbl.create 16 in
  List.iter
    (fun (i : Netlist.instance) ->
      Hashtbl.replace type_of_path i.Netlist.ipath i.Netlist.itype)
    (Netlist.instances nl);
  let owner_types name =
    let rec go name acc =
      match String.rindex_opt name '.' with
      | None -> acc
      | Some i ->
          let prefix = String.sub name 0 i in
          let acc =
            match Hashtbl.find_opt type_of_path prefix with
            | Some t -> t :: acc
            | None -> acc
          in
          go prefix acc
    in
    go name []
  in
  let skip = Array.make n true in
  let seen = Array.make n false in
  Array.iter
    (fun (net : Netlist.net) ->
      let c = canon net.Netlist.id in
      seen.(c) <- true;
      match owner_types net.Netlist.name with
      | [] -> skip.(c) <- false
      | ts ->
          if not (List.for_all proven_safe ts) then skip.(c) <- false)
    (Netlist.nets_array nl);
  Array.mapi (fun c s -> s && seen.(c)) skip

let prove_conflicts st bag ~budget ~splits ~can_undef ~skip nl =
  let n = Netlist.net_count nl in
  let canon id = Netlist.canonical nl id in
  (* producers per canonical class, in creation order *)
  let prods = Array.make n [] in
  Array.iter
    (fun (g : Netlist.gate) ->
      let c = canon g.Netlist.output in
      prods.(c) <- { pr_cond = Btrue; pr_loc = g.Netlist.gloc } :: prods.(c))
    st.gate_arr;
  Array.iter
    (fun (d : Netlist.driver) ->
      let c = canon d.Netlist.target in
      prods.(c) <-
        { pr_cond = drive_cond st d.Netlist.guard; pr_loc = d.Netlist.dloc }
        :: prods.(c))
    st.driver_arr;
  (* class kind: mux if any member is mux *)
  let kind = Array.make n Etype.KBool in
  Array.iter
    (fun (net : Netlist.net) ->
      if net.Netlist.kind = Etype.KMux then kind.(canon net.Netlist.id) <- Etype.KMux)
    (Netlist.nets_array nl);
  let verdicts = ref [] in
  for c = 0 to n - 1 do
    match List.rev prods.(c) with
    | [] | [ _ ] -> ()
    | ps when skip c ->
        verdicts :=
          {
            v_net = c;
            v_name = (Netlist.net nl c).Netlist.name;
            v_kind = kind.(c);
            v_producers = List.length ps;
            v_class = Safe;
            v_detail = "proved by the modular type summary (pre-pass)";
          }
          :: !verdicts
    | ps ->
        let name = (Netlist.net nl c).Netlist.name in
        let nps = List.length ps in
        let parr = Array.of_list ps in
        let conflict = ref None and unknown = ref None in
        let pairs = ref 0 in
        (try
           for i = 0 to nps - 1 do
             for j = i + 1 to nps - 1 do
               if !conflict = None then begin
                 incr pairs;
                 let f = band [ parr.(i).pr_cond; parr.(j).pr_cond ] in
                 let touches_undef =
                   exists_var (fun v opq -> opq && Hashtbl.mem st.undef_roots v) f
                 in
                 if touches_undef then begin
                   if !unknown = None then
                     unknown :=
                       Some
                         ( "a guard can read UNDEF (an undefined guard \
                            drives)",
                           parr.(j).pr_loc )
                 end
                 else
                   match solve ~budget ~splits f with
                   | Unsat ->
                       (* exclusive over booleans — but an UNDEF guard
                          also drives, so exclusivity only holds if no
                          variable in either guard can read UNDEF
                          (register power-up, or a latched UNDEF) *)
                       if
                         exists_var
                           (fun v opq -> (not opq) && v >= 0 && can_undef v)
                           f
                       then
                         if !unknown = None then
                           unknown :=
                             Some
                               ( "a guard depends on sequential state that \
                                  can read UNDEF (an undefined guard \
                                  drives)",
                                 parr.(j).pr_loc )
                   | Budget_out ->
                       unknown :=
                         Some
                           ( Printf.sprintf
                               "solver budget of %d case splits exhausted"
                               budget,
                             parr.(j).pr_loc );
                       raise Exit
                   | Sat m ->
                       if List.exists (fun (v, _) -> not (v >= 0 && st.free_root.(v))) m
                       then begin
                         if !unknown = None then
                           unknown :=
                             Some
                               ( "exclusivity depends on a net the prover \
                                  cannot reduce",
                                 parr.(j).pr_loc )
                       end
                       else
                         conflict :=
                           Some (witness_to_string nl m, parr.(i).pr_loc, parr.(j).pr_loc)
               end
             done
           done
         with Exit -> ());
        let v_class, v_detail =
          match (!conflict, !unknown) with
          | Some (w, l1, l2), _ ->
              let w = if w = "" then "any input" else w in
              Diag.Bag.error bag ~code:Diag.Code.drive_conflict Diag.Lint_error l2
                "'%s' can receive two driving values in one cycle (drivers \
                 at %a and %a; witness: %s) — this would burn transistors"
                name Loc.pp l1 Loc.pp l2 w;
              (Conflict, Printf.sprintf "witness: %s" w)
          | None, Some (why, loc) ->
              Diag.Bag.warning bag ~code:Diag.Code.drive_unproven Diag.Lint_error
                loc
                "'%s': driver exclusivity not proved (%s) — the runtime \
                 multiple-drive check [%s] guards this net"
                name why Diag.Code.drive_conflict;
              (Needs_runtime_check, why)
          | None, None ->
              ( Safe,
                Printf.sprintf "proved exclusive (%d pair%s)" !pairs
                  (if !pairs = 1 then "" else "s") )
        in
        verdicts :=
          {
            v_net = c;
            v_name = name;
            v_kind = kind.(c);
            v_producers = nps;
            v_class;
            v_detail;
          }
          :: !verdicts
  done;
  List.rev !verdicts

(* ------------------------------------------------------------------ *)
(* Pass 2: UNDEF reachability                                           *)
(* ------------------------------------------------------------------ *)

(* value sets as bitmasks *)
let m_zero = 1
and m_one = 2
and m_undef = 4
and m_noinfl = 8

let mask_of = function
  | Logic.Zero -> m_zero
  | Logic.One -> m_one
  | Logic.Undef -> m_undef
  | Logic.Noinfl -> m_noinfl

let values_of_mask m =
  List.filter
    (fun v -> m land mask_of v <> 0)
    [ Logic.Zero; Logic.One; Logic.Undef; Logic.Noinfl ]

let booleanize_mask m =
  if m land m_noinfl <> 0 then (m land lnot m_noinfl) lor m_undef else m

let apply1 f m =
  List.fold_left (fun acc v -> acc lor mask_of (f v)) 0 (values_of_mask m)

let apply2 f ma mb =
  List.fold_left
    (fun acc a ->
      List.fold_left (fun acc b -> acc lor mask_of (f a b)) acc (values_of_mask mb))
    0 (values_of_mask ma)

let fold2 f = function
  | [] -> 0
  | m :: ms -> List.fold_left (apply2 f) (booleanize_mask m) ms

let gate_mask op inputs =
  let inputs = List.map booleanize_mask inputs in
  match (op : Netlist.gate_op) with
  | Netlist.Gand -> fold2 Logic.and2 inputs
  | Netlist.Gor -> fold2 Logic.or2 inputs
  | Netlist.Gnand -> apply1 Logic.not_ (fold2 Logic.and2 inputs)
  | Netlist.Gnor -> apply1 Logic.not_ (fold2 Logic.or2 inputs)
  | Netlist.Gxor -> fold2 Logic.xor2 inputs
  | Netlist.Gnot -> (
      match inputs with [ m ] -> apply1 Logic.not_ m | _ -> m_undef)
  | Netlist.Gequal ->
      let len = List.length inputs in
      if len mod 2 <> 0 then m_undef
      else
        let a = List.filteri (fun i _ -> i < len / 2) inputs
        and b = List.filteri (fun i _ -> i >= len / 2) inputs in
        List.fold_left2
          (fun acc x y -> apply2 Logic.and2 acc (apply2 Logic.equal2 x y))
          m_one a b
  | Netlist.Grandom -> m_zero lor m_one

(* The value-set fixpoint, shared with pass 1: [sets] maps every
   canonical net to the set of values it can ever carry; [undriven]
   flags producer-less non-input, non-register classes.  Inputs are
   assumed defined ({0,1}) — that is the documented environment
   assumption of the whole lint — but register outputs start from their
   power-up value (UNDEF unless REG(c) gave a constant) and absorb
   whatever their input can latch, so UNDEF-capability of sequential
   state is tracked precisely. *)
let value_sets (design : Elaborate.design) =
  let nl = design.Elaborate.netlist in
  let n = Netlist.net_count nl in
  let canon id = Netlist.canonical nl id in
  let inputs = Array.make n false in
  List.iter (fun id -> inputs.(canon id) <- true) (Check.top_input_nets design);
  let gates_of = Array.make n [] and drivers_of = Array.make n [] in
  List.iter
    (fun (g : Netlist.gate) ->
      let c = canon g.Netlist.output in
      gates_of.(c) <- g :: gates_of.(c))
    (Netlist.gates nl);
  List.iter
    (fun (d : Netlist.driver) ->
      let c = canon d.Netlist.target in
      drivers_of.(c) <- d :: drivers_of.(c))
    (Netlist.drivers nl);
  let reg_of_out = Hashtbl.create 16 in
  List.iter
    (fun (r : Netlist.reg) -> Hashtbl.replace reg_of_out (canon r.Netlist.rout) r)
    (Netlist.regs nl);
  let sets = Array.make n 0 in
  let mask_of_src = function
    | Netlist.Sconst v -> mask_of v
    | Netlist.Snet id -> sets.(canon id)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for c = 0 to n - 1 do
      if canon c = c then begin
        let contribs = ref [] in
        List.iter
          (fun (g : Netlist.gate) ->
            contribs := gate_mask g.Netlist.op (List.map mask_of_src g.Netlist.inputs) :: !contribs)
          gates_of.(c);
        List.iter
          (fun (d : Netlist.driver) ->
            let src = mask_of_src d.Netlist.source in
            let m =
              match d.Netlist.guard with
              | None -> src
              | Some g ->
                  let gm = booleanize_mask (mask_of_src g) in
                  (if gm land m_one <> 0 then src else 0)
                  lor (if gm land m_zero <> 0 then m_noinfl else 0)
                  lor (if gm land m_undef <> 0 then m_undef else 0)
            in
            contribs := m :: !contribs)
          drivers_of.(c);
        let driving = List.filter (fun m -> m land lnot m_noinfl <> 0) !contribs in
        let base =
          if inputs.(c) then m_zero lor m_one
          else
            match Hashtbl.find_opt reg_of_out c with
            | Some r ->
                mask_of r.Netlist.rinit
                lor booleanize_mask (sets.(canon r.Netlist.rin) land lnot m_noinfl)
            | None ->
                if !contribs = [] then m_undef (* producer-less: reads UNDEF *)
                else 0
        in
        let m =
          List.fold_left ( lor ) base !contribs
          lor (if List.length driving >= 2 then m_undef else 0)
        in
        let m = sets.(c) lor m in
        if m <> sets.(c) then begin
          sets.(c) <- m;
          changed := true
        end
      end
    done
  done;
  let undriven =
    Array.init n (fun c ->
        gates_of.(c) = [] && drivers_of.(c) = []
        && (not inputs.(c))
        && not (Hashtbl.mem reg_of_out c))
  in
  (sets, undriven)

let undef_pass bag (design : Elaborate.design) (sets, undriven) =
  let nl = design.Elaborate.netlist in
  let n = Netlist.net_count nl in
  let canon id = Netlist.canonical nl id in
  (* report per class, through a representative read, user-visible net *)
  let members = Array.make n [] in
  Array.iter
    (fun (net : Netlist.net) ->
      let c = canon net.Netlist.id in
      members.(c) <- net :: members.(c))
    (Netlist.nets_array nl);
  for c = 0 to n - 1 do
    if canon c = c then begin
      let read =
        List.filter
          (fun (net : Netlist.net) ->
            net.Netlist.reads > 0 && not (String.contains net.Netlist.name '#'))
          members.(c)
      in
      let rep =
        match
          List.filter (fun (n : Netlist.net) -> not (Loc.is_dummy n.Netlist.loc)) read
        with
        | net :: _ -> Some net
        | [] -> ( match read with net :: _ -> Some net | [] -> None)
      in
      match rep with
      | None -> ()
      | Some net ->
          if undriven.(c) then
            Diag.Bag.warning bag ~code:Diag.Code.undriven_read Diag.Lint_error
              net.Netlist.loc "'%s' is read but never driven — it reads UNDEF \
                               forever"
              net.Netlist.name
          else if sets.(c) land (m_zero lor m_one) = 0 then
            Diag.Bag.warning bag ~code:Diag.Code.undef_only Diag.Lint_error
              net.Netlist.loc
              "'%s' can never carry a defined value — every read yields UNDEF"
              net.Netlist.name
    end
  done

(* ------------------------------------------------------------------ *)
(* Pass 3: dead hardware                                                *)
(* ------------------------------------------------------------------ *)

(* returns the paths of instances reported dead, so pass 4 can avoid
   re-reporting every net inside an already-flagged instance *)
let dead_pass bag (design : Elaborate.design) =
  let nl = design.Elaborate.netlist in
  let canon id = Netlist.canonical nl id in
  let dead_paths = ref [] in
  let known = Optimize.known_constants design in
  let guard_value = function
    | Netlist.Sconst v -> Some v
    | Netlist.Snet id -> known.(canon id)
  in
  (* one report per source location: an IF arm over a wide signal makes
     one driver per bit, all at the same loc *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (d : Netlist.driver) ->
      match d.Netlist.guard with
      | None -> ()
      | Some g -> (
          match Option.map Logic.booleanize (guard_value g) with
          | Some Logic.Zero ->
              let key =
                (d.Netlist.dloc.Loc.start.Loc.offset, d.Netlist.dloc.Loc.stop.Loc.offset)
              in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.replace seen key ();
                Diag.Bag.warning bag ~code:Diag.Code.dead_branch Diag.Lint_error
                  d.Netlist.dloc
                  "branch guard is statically false — the conditional \
                   assignment to '%s' can never fire (dead hardware)"
                  (Netlist.net nl d.Netlist.target).Netlist.name
              end
          | _ -> ()))
    (Netlist.drivers nl);
  let live = Optimize.observable design in
  List.iter
    (fun (i : Netlist.instance) ->
      if String.contains i.Netlist.ipath '.' && not i.Netlist.is_function_call
      then begin
        let out_nets =
          List.concat_map
            (fun (_, mode, nets) ->
              match mode with
              | Etype.Out | Etype.Inout -> nets
              | Etype.In -> [])
            i.Netlist.iports
        in
        if out_nets <> [] && not (List.exists (fun id -> live.(canon id)) out_nets)
        then begin
          dead_paths := i.Netlist.ipath :: !dead_paths;
          Diag.Bag.warning bag ~code:Diag.Code.dead_instance Diag.Lint_error
            i.Netlist.iloc
            "instance '%s' of '%s': no output reaches a register or an \
             output port — the hardware is dead"
            i.Netlist.ipath i.Netlist.itype
        end
      end)
    (Netlist.instances nl);
  List.rev !dead_paths

(* ------------------------------------------------------------------ *)
(* Pass 4: abstract interpretation (Z501/Z502/Z503)                     *)
(* ------------------------------------------------------------------ *)

let absint_pass bag (design : Elaborate.design) (sets, _undriven) ~dead_paths =
  let nl = design.Elaborate.netlist in
  let ai = Absint.analyze design in
  let members = Array.make ai.Absint.n_classes [] in
  Array.iter
    (fun (net : Netlist.net) ->
      let c = ai.Absint.canon.(net.Netlist.id) in
      members.(c) <- net :: members.(c))
    (Netlist.nets_array nl);
  let under_dead name =
    List.exists
      (fun p ->
        let lp = String.length p in
        String.length name > lp
        && String.sub name 0 lp = p
        && name.[lp] = '.')
      dead_paths
  in
  (* report through a representative user-visible net, preferring one
     with a real source location (same discipline as the UNDEF pass) *)
  let pick nets =
    match
      List.filter (fun (n : Netlist.net) -> not (Loc.is_dummy n.Netlist.loc)) nets
    with
    | net :: _ -> Some net
    | [] -> ( match nets with net :: _ -> Some net | [] -> None)
  in
  for c = 0 to ai.Absint.n_classes - 1 do
    if ai.Absint.producers.(c) > 0 && not ai.Absint.input_class.(c) then begin
      let generated (name : string) =
        (* elaboration helpers with no source-level identity: gate
           temporaries ('#') and the guard/negated-guard nets built for
           IF arms — a negation synthesized for an absent ELSE is
           always unobservable, and blaming it would flag every
           guarded assignment *)
        let suffix s =
          let ls = String.length s and ln = String.length name in
          ln >= ls && String.sub name (ln - ls) ls = s
        in
        String.contains name '#' || suffix ".guard" || suffix ".nguard"
      in
      let visible =
        List.filter
          (fun (n : Netlist.net) -> not (generated n.Netlist.name))
          (List.rev members.(c))
      in
      (* a net someone looks at: read by logic, or an OUT/INOUT pin *)
      let observed =
        List.filter
          (fun (n : Netlist.net) ->
            n.Netlist.reads > 0
            ||
            match n.Netlist.pin with
            | Some (_, (Etype.Out | Etype.Inout)) -> true
            | _ -> false)
          visible
      in
      (match ai.Absint.cls.(c) with
      | Absint.Const0 | Absint.Const1 -> (
          match pick observed with
          | Some net ->
              Diag.Bag.warning bag ~code:Diag.Code.absint_constant
                Diag.Lint_error net.Netlist.loc
                "'%s' is provably constant %s under all inputs — zeusc opt \
                 folds it"
                net.Netlist.name
                (match ai.Absint.cls.(c) with
                | Absint.Const1 -> "1"
                | _ -> "0")
          | None -> ())
      | Absint.StuckX | Absint.StuckZ -> (
          (* the value-set pass (Z202) already reports classes that can
             never read a defined value; Z502 adds the strictly finer
             must-facts it misses — e.g. a guaranteed drive conflict
             resolving to UNDEF every cycle *)
          let oc = ai.Absint.rep.(c) in
          if booleanize_mask sets.(oc) land (m_zero lor m_one) <> 0 then
            match pick observed with
            | Some net ->
                Diag.Bag.warning bag ~code:Diag.Code.absint_stuck
                  Diag.Lint_error net.Netlist.loc
                  (if ai.Absint.cls.(c) = Absint.StuckX then
                     "'%s' is stuck at UNDEF: its drivers provably conflict \
                      (or yield UNDEF) every cycle under all inputs"
                   else
                     "'%s' provably floats (NOINFL) every cycle — no driver \
                      can ever fire")
                  net.Netlist.name
            | None -> ())
      | Absint.Varying -> ());
      if not ai.Absint.observable.(c) then begin
        let candidates =
          List.filter
            (fun (n : Netlist.net) ->
              (not n.Netlist.starred) && not (under_dead n.Netlist.name))
            visible
        in
        match pick candidates with
        | Some net ->
            Diag.Bag.warning bag ~code:Diag.Code.absint_unobservable
              Diag.Lint_error net.Netlist.loc
              "'%s' is driven but reaches no register or output port — the \
               logic feeding it is dead (zeusc opt removes it)"
              net.Netlist.name
        | None -> ()
      end
    end
  done

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let default_budget = 4096

let run ?(budget = default_budget) ?proven_safe (design : Elaborate.design) =
  let nl = design.Elaborate.netlist in
  let bag = Diag.Bag.create () in
  let st = make_expander design in
  let splits = ref 0 in
  let skip =
    match proven_safe with
    | None -> fun _ -> false
    | Some p ->
        let arr = modular_skip design p in
        fun c -> arr.(c)
  in
  (* expansion must precede the conflict pass so undef_roots is filled
     before pairs are scanned — drive_cond runs inside the pass, so
     scan pairs only after all conditions are expanded (prove_conflicts
     builds every producer's condition before solving any pair) *)
  let (sets, _) as vsets = value_sets design in
  let can_undef c = booleanize_mask sets.(c) land m_undef <> 0 in
  let verdicts = prove_conflicts st bag ~budget ~splits ~can_undef ~skip nl in
  undef_pass bag design vsets;
  let dead_paths = dead_pass bag design in
  absint_pass bag design vsets ~dead_paths;
  { verdicts; findings = Diag.Bag.all bag; splits = !splits }

let count cls report =
  List.length (List.filter (fun v -> v.v_class = cls) report.verdicts)

let summary report =
  (* the sequential-prover upgrade count appears only when non-zero, so
     the plain-lint output is unchanged by the seqprove pass existing *)
  let seq =
    match count Safe_sequential report with
    | 0 -> ""
    | n -> Printf.sprintf ", %d safe-sequential" n
  in
  Printf.sprintf
    "%d multi-driven net%s: %d safe%s, %d conflict, %d needs-runtime-check; \
     %d finding%s (%d case splits)"
    (List.length report.verdicts)
    (if List.length report.verdicts = 1 then "" else "s")
    (count Safe report) seq (count Conflict report)
    (count Needs_runtime_check report)
    (List.length report.findings)
    (if List.length report.findings = 1 then "" else "s")
    report.splits

(* ------------------------------------------------------------------ *)
(* JSON output                                                          *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_loc (loc : Loc.t) =
  if Loc.is_dummy loc then "null"
  else
    Printf.sprintf
      "{\"line\":%d,\"col\":%d,\"end_line\":%d,\"end_col\":%d}"
      loc.Loc.start.Loc.line loc.Loc.start.Loc.col loc.Loc.stop.Loc.line
      loc.Loc.stop.Loc.col

(* Bump whenever the shape of the JSON report changes, so downstream
   tooling can detect incompatible output.  1: first versioned schema
   (unversioned output predates it); 2: summary gained
   [safe_sequential] (the sequential-prover upgrade count). *)
let json_schema_version = 2

let json_of_report report =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\n  \"version\": %d,\n  \"nets\": [" json_schema_version);
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n    {\"net\":\"%s\",\"kind\":\"%s\",\"producers\":%d,\"class\":\"%s\",\"detail\":\"%s\"}"
           (json_escape v.v_name)
           (Etype.kind_to_string v.v_kind)
           v.v_producers
           (classification_to_string v.v_class)
           (json_escape v.v_detail)))
    report.verdicts;
  Buffer.add_string b "\n  ],\n  \"findings\": [";
  List.iteri
    (fun i (d : Diag.t) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n    {\"code\":%s,\"severity\":\"%s\",\"kind\":\"%s\",\"loc\":%s,\"message\":\"%s\"}"
           (match d.Diag.code with
           | Some c -> Printf.sprintf "\"%s\"" (json_escape c)
           | None -> "null")
           (Diag.severity_to_string d.Diag.severity)
           (Diag.kind_to_string d.Diag.kind)
           (json_loc d.Diag.loc)
           (json_escape d.Diag.message)))
    report.findings;
  Buffer.add_string b
    (Printf.sprintf
       "\n  ],\n  \"summary\": {\"nets\":%d,\"safe\":%d,\"safe_sequential\":%d,\"conflict\":%d,\"needs_runtime_check\":%d,\"findings\":%d,\"splits\":%d}\n}"
       (List.length report.verdicts)
       (count Safe report)
       (count Safe_sequential report)
       (count Conflict report)
       (count Needs_runtime_check report)
       (List.length report.findings)
       report.splits);
  Buffer.contents b
