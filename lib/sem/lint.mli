(** The lint engine: static proofs about the elaborated netlist.

    Three passes over an elaborated design, all reporting through the
    stable diagnostic codes of {!Zeus_base.Diag.Code}:

    - a {b drive-conflict prover} (Z101/Z102) that collects the guard
      expressions of every producer of each multi-driven net and
      decides their pairwise mutual exclusivity with a bounded
      DPLL-style solver — the static half of the paper's
      (NP-complete, section 4.7) multiplex single-drive check, with
      the simulator's runtime multiple-drive check as the fallback;
    - an {b UNDEF-reachability} dataflow pass (Z201/Z202) over the
      four-valued algebra, flagging nets that can only ever read
      UNDEF;
    - a {b dead-hardware} pass (Z301/Z302) for statically-false branch
      guards surviving constant evaluation and instances whose
      outputs reach no register or output port. *)

(** Boolean formulas over integer-identified variables.  [Bvar] is a
    free variable (a witness assigning only free variables is
    realizable); [Bopq] is opaque — the solver may split on it (sound
    for UNSAT) but a witness assigning one proves nothing.  The
    formula layer is exposed so the modular summary analysis
    ({!Summary}) can reuse the same bounded prover on composed
    type-level guards. *)
type bexp =
  | Btrue
  | Bfalse
  | Bvar of int
  | Bopq of int
  | Bnot of bexp
  | Band of bexp list
  | Bor of bexp list
  | Bxor of bexp * bexp

(** Smart constructors: flatten, drop units, short-circuit constants. *)
val bnot : bexp -> bexp

val band : bexp list -> bexp
val bor : bexp list -> bexp
val bxor : bexp -> bexp -> bexp

(** [exists_var p e] — does some variable [v] satisfy [p v is_opaque]? *)
val exists_var : (int -> bool -> bool) -> bexp -> bool

type sat_result =
  | Unsat
  | Sat of (int * bool) list  (** the assigned variables at the leaf *)
  | Budget_out

(** DPLL-style case-splitting, free variables split first.  [budget]
    bounds the splits of this one call; [splits] accumulates a grand
    total across calls. *)
val solve : budget:int -> splits:int ref -> bexp -> sat_result

type classification =
  | Safe  (** every pair of drivers proved mutually exclusive *)
  | Safe_sequential
      (** not provable combinationally, but the bounded sequential
          prover ({!Seqprove}) showed no reachable register state can
          make two drivers fire together — the runtime check can be
          discharged under the defined-inputs environment assumption *)
  | Conflict  (** two drivers can fire in one cycle; witness attached *)
  | Needs_runtime_check
      (** not decided within budget, or exclusivity depends on values
          the prover cannot see — the runtime check guards this net *)

val classification_to_string : classification -> string

(** One multi-driven net (canonical alias class). *)
type net_verdict = {
  v_net : int;  (** canonical net id *)
  v_name : string;
  v_kind : Etype.kind;
  v_producers : int;  (** drivers + gates on the class *)
  v_class : classification;
  v_detail : string;  (** witness, proof summary or reason *)
}

type report = {
  verdicts : net_verdict list;  (** every multi-driven class, by net id *)
  findings : Zeus_base.Diag.t list;
  splits : int;  (** total case splits spent by the solver *)
}

val default_budget : int

(** Run all three passes.  [budget] bounds the number of case splits
    the conflict prover may spend per net pair (default
    {!default_budget}); exhausting it demotes the net to
    [Needs_runtime_check] rather than guessing.

    [proven_safe] is the modular fast path: a predicate over component
    type names whose summaries ({!Summary}) already proved every drive
    target conflict-free for the instantiated parameters.  A net class
    all of whose member nets live under instances of proven types
    (including, for port nets, the instantiating parent's type) is
    classified [Safe] without expanding or solving anything — the
    summary pre-pass skips proven-safe subtrees. *)
val run :
  ?budget:int -> ?proven_safe:(string -> bool) -> Elaborate.design -> report

(** [count cls report] — verdicts with classification [cls]. *)
val count : classification -> report -> int

(** "N multi-driven nets: ... ; M findings (S case splits)" *)
val summary : report -> string

(** {2 Internals shared with the sequential prover}

    The guard expander and the four-valued value-set machinery are
    exposed (read-only) so {!Seqprove} can lift the same guard
    formulas and transfer functions to per-cycle reachability without
    duplicating the netlist walk. *)

(** The memoizing guard expander of the conflict prover: walks the
    netlist backwards from a net to a [bexp] over free variables
    (testbench inputs, register outputs, RANDOM sources — their
    canonical class ids) and opaque leaves. *)
type expander

val make_expander : Elaborate.design -> expander

(** [expand st id] — the boolean formula for net [id] (any alias of
    the class).  Memoized; bounded by an internal node cap past which
    leaves become opaque. *)
val expand : expander -> int -> bexp

(** [drive_cond st guard] — the condition under which a driver with
    this guard produces a driving (non-NOINFL) value: [Btrue] for an
    unconditional driver, and the expanded guard otherwise (an UNDEF
    guard also drives). *)
val drive_cond : expander -> Netlist.src option -> bexp

val expander_netlist : expander -> Netlist.t

(** Is this canonical class a free root (testbench input, register
    output, RANDOM source)?  Variable ids in expanded formulas are
    canonical class ids, so this classifies [Bvar]s. *)
val is_free_root : expander -> int -> bool

(** Did the expansion record this (possibly negative) opaque id as one
    that can read UNDEF (an undriven net or a literal-UNDEF
    constant)? *)
val is_undef_root : expander -> int -> bool

(** {3 Value-set masks}

    The four-valued dataflow of pass 2, as bitmasks over
    {!Zeus_base.Logic.t} values. *)

val m_zero : int

val m_one : int
val m_undef : int
val m_noinfl : int
val mask_of : Zeus_base.Logic.t -> int

(** NOINFL reads back as UNDEF (an undriven mux net). *)
val booleanize_mask : int -> int

(** The transfer function of a gate over input value-set masks
    (inputs are booleanized first, as the simulator does). *)
val gate_mask : Netlist.gate_op -> int list -> int

(** The flow-insensitive value-set fixpoint: for every canonical net,
    the mask of values it can ever carry, plus the producer-less
    (undriven) flags.  Inputs are assumed defined ({0,1}); register
    outputs start from power-up. *)
val value_sets : Elaborate.design -> int array * bool array

(** The schema version carried in the [version] member of the JSON
    report; bumped on any incompatible change to the output shape. *)
val json_schema_version : int

(** The whole report as a JSON object with [version], [nets],
    [findings] and [summary] members.  Hand-rolled, schema-stable
    output. *)
val json_of_report : report -> string
