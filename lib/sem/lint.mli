(** The lint engine: static proofs about the elaborated netlist.

    Three passes over an elaborated design, all reporting through the
    stable diagnostic codes of {!Zeus_base.Diag.Code}:

    - a {b drive-conflict prover} (Z101/Z102) that collects the guard
      expressions of every producer of each multi-driven net and
      decides their pairwise mutual exclusivity with a bounded
      DPLL-style solver — the static half of the paper's
      (NP-complete, section 4.7) multiplex single-drive check, with
      the simulator's runtime multiple-drive check as the fallback;
    - an {b UNDEF-reachability} dataflow pass (Z201/Z202) over the
      four-valued algebra, flagging nets that can only ever read
      UNDEF;
    - a {b dead-hardware} pass (Z301/Z302) for statically-false branch
      guards surviving constant evaluation and instances whose
      outputs reach no register or output port. *)

(** Boolean formulas over integer-identified variables.  [Bvar] is a
    free variable (a witness assigning only free variables is
    realizable); [Bopq] is opaque — the solver may split on it (sound
    for UNSAT) but a witness assigning one proves nothing.  The
    formula layer is exposed so the modular summary analysis
    ({!Summary}) can reuse the same bounded prover on composed
    type-level guards. *)
type bexp =
  | Btrue
  | Bfalse
  | Bvar of int
  | Bopq of int
  | Bnot of bexp
  | Band of bexp list
  | Bor of bexp list
  | Bxor of bexp * bexp

(** Smart constructors: flatten, drop units, short-circuit constants. *)
val bnot : bexp -> bexp

val band : bexp list -> bexp
val bor : bexp list -> bexp
val bxor : bexp -> bexp -> bexp

(** [exists_var p e] — does some variable [v] satisfy [p v is_opaque]? *)
val exists_var : (int -> bool -> bool) -> bexp -> bool

type sat_result =
  | Unsat
  | Sat of (int * bool) list  (** the assigned variables at the leaf *)
  | Budget_out

(** DPLL-style case-splitting, free variables split first.  [budget]
    bounds the splits of this one call; [splits] accumulates a grand
    total across calls. *)
val solve : budget:int -> splits:int ref -> bexp -> sat_result

type classification =
  | Safe  (** every pair of drivers proved mutually exclusive *)
  | Conflict  (** two drivers can fire in one cycle; witness attached *)
  | Needs_runtime_check
      (** not decided within budget, or exclusivity depends on values
          the prover cannot see — the runtime check guards this net *)

val classification_to_string : classification -> string

(** One multi-driven net (canonical alias class). *)
type net_verdict = {
  v_net : int;  (** canonical net id *)
  v_name : string;
  v_kind : Etype.kind;
  v_producers : int;  (** drivers + gates on the class *)
  v_class : classification;
  v_detail : string;  (** witness, proof summary or reason *)
}

type report = {
  verdicts : net_verdict list;  (** every multi-driven class, by net id *)
  findings : Zeus_base.Diag.t list;
  splits : int;  (** total case splits spent by the solver *)
}

val default_budget : int

(** Run all three passes.  [budget] bounds the number of case splits
    the conflict prover may spend per net pair (default
    {!default_budget}); exhausting it demotes the net to
    [Needs_runtime_check] rather than guessing.

    [proven_safe] is the modular fast path: a predicate over component
    type names whose summaries ({!Summary}) already proved every drive
    target conflict-free for the instantiated parameters.  A net class
    all of whose member nets live under instances of proven types
    (including, for port nets, the instantiating parent's type) is
    classified [Safe] without expanding or solving anything — the
    summary pre-pass skips proven-safe subtrees. *)
val run :
  ?budget:int -> ?proven_safe:(string -> bool) -> Elaborate.design -> report

(** "N multi-driven nets: ... ; M findings (S case splits)" *)
val summary : report -> string

(** The schema version carried in the [version] member of the JSON
    report; bumped on any incompatible change to the output shape. *)
val json_schema_version : int

(** The whole report as a JSON object with [version], [nets],
    [findings] and [summary] members.  Hand-rolled, schema-stable
    output. *)
val json_of_report : report -> string
