(** The lint engine: static proofs about the elaborated netlist.

    Three passes over an elaborated design, all reporting through the
    stable diagnostic codes of {!Zeus_base.Diag.Code}:

    - a {b drive-conflict prover} (Z101/Z102) that collects the guard
      expressions of every producer of each multi-driven net and
      decides their pairwise mutual exclusivity with a bounded
      DPLL-style solver — the static half of the paper's
      (NP-complete, section 4.7) multiplex single-drive check, with
      the simulator's runtime multiple-drive check as the fallback;
    - an {b UNDEF-reachability} dataflow pass (Z201/Z202) over the
      four-valued algebra, flagging nets that can only ever read
      UNDEF;
    - a {b dead-hardware} pass (Z301/Z302) for statically-false branch
      guards surviving constant evaluation and instances whose
      outputs reach no register or output port. *)

type classification =
  | Safe  (** every pair of drivers proved mutually exclusive *)
  | Conflict  (** two drivers can fire in one cycle; witness attached *)
  | Needs_runtime_check
      (** not decided within budget, or exclusivity depends on values
          the prover cannot see — the runtime check guards this net *)

val classification_to_string : classification -> string

(** One multi-driven net (canonical alias class). *)
type net_verdict = {
  v_net : int;  (** canonical net id *)
  v_name : string;
  v_kind : Etype.kind;
  v_producers : int;  (** drivers + gates on the class *)
  v_class : classification;
  v_detail : string;  (** witness, proof summary or reason *)
}

type report = {
  verdicts : net_verdict list;  (** every multi-driven class, by net id *)
  findings : Zeus_base.Diag.t list;
  splits : int;  (** total case splits spent by the solver *)
}

val default_budget : int

(** Run all three passes.  [budget] bounds the number of case splits
    the conflict prover may spend per net pair (default
    {!default_budget}); exhausting it demotes the net to
    [Needs_runtime_check] rather than guessing. *)
val run : ?budget:int -> Elaborate.design -> report

(** "N multi-driven nets: ... ; M findings (S case splits)" *)
val summary : report -> string

(** The whole report as a JSON object with [nets], [findings] and
    [summary] members.  Hand-rolled, schema-stable output. *)
val json_of_report : report -> string
