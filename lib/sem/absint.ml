(* Four-valued abstract interpretation over the compacted class graph.

   The lattice is flat: Bot < Const v < Top, with the middle layer the
   four values of Logic (0, 1, UNDEF, NOINFL).  [Const v] is a *must*
   fact — the class carries exactly [v] in every cycle under every
   input — so the transfer functions are the simulator's own evaluation
   rules lifted pointwise:

   - gates use the early-firing partial evaluators (Optimize shares
     them), with Top as "unknown input";
   - drivers case-split on the guard's abstract value (0 contributes
     NOINFL, 1 the source, a provably-undefined guard drives UNDEF);
   - multi-driven classes join producer contributions through the
     abstract drive resolution: all-constant contributions resolve
     exactly via Logic.resolve (a guaranteed conflict is a guaranteed
     UNDEF, matching the runtime multiple-drive check), anything
     varying is Top;
   - register outputs accumulate (widen) the power-up value joined
     with every value the input can latch across cycles; a NOINFL
     input keeps the stored value and contributes nothing new.

   The alias union-find is resolved once into dense class ids — the
   same compaction Zeus_sim.Graph.build performs — and adjacency is
   CSR: flat consumer/producer node-id arrays with offset tables.  A
   FIFO worklist then runs the monotone transfer functions to a
   fixpoint; the lattice has height 2, so every class is re-evaluated
   O(fan-in) times. *)

open Zeus_base

type av =
  | Bot
  | Const of Logic.t
  | Top

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Top, _ | _, Top -> Top
  | Const u, Const v -> if Logic.equal u v then a else Top

let av_to_string = function
  | Bot -> "bot"
  | Const v -> Printf.sprintf "const-%c" (Logic.to_char v)
  | Top -> "varying"

type classification =
  | Const0
  | Const1
  | StuckX
  | StuckZ
  | Varying

let classification_to_string = function
  | Const0 -> "const-0"
  | Const1 -> "const-1"
  | StuckX -> "stuck-X"
  | StuckZ -> "stuck-Z"
  | Varying -> "varying"

type t = {
  n_classes : int;
  canon : int array;
  rep : int array;
  value : av array;
  cls : classification array;
  observable : bool array;
  input_class : bool array;
  reg_out_class : bool array;
  producers : int array;
  steps : int;
}

(* a producer node with class ids baked into its sources *)
type csrc =
  | Cnet of int
  | Cconst of Logic.t

type node =
  | Ngate of Netlist.gate_op * csrc list
  | Ndriver of csrc option * csrc

let node_inputs = function
  | Ngate (_, inputs) -> inputs
  | Ndriver (guard, source) -> source :: Option.to_list guard

let analyze (design : Elaborate.design) =
  let nl = design.Elaborate.netlist in
  let n = Netlist.net_count nl in
  (* resolve the union-find once: original id -> dense class id *)
  let canon = Array.make n (-1) in
  let rep_rev = ref [] in
  let n_classes = ref 0 in
  for id = 0 to n - 1 do
    let root = Netlist.canonical nl id in
    if canon.(root) < 0 then begin
      canon.(root) <- !n_classes;
      rep_rev := root :: !rep_rev;
      incr n_classes
    end;
    canon.(id) <- canon.(root)
  done;
  let n_classes = !n_classes in
  let rep = Array.make n_classes 0 in
  List.iteri (fun i root -> rep.(n_classes - 1 - i) <- root) !rep_rev;
  let canon_src = function
    | Netlist.Snet id -> Cnet canon.(id)
    | Netlist.Sconst v -> Cconst v
  in
  (* producer nodes, with their output class *)
  let nodes = ref [] and outs = ref [] in
  List.iter
    (fun (g : Netlist.gate) ->
      nodes := Ngate (g.Netlist.op, List.map canon_src g.Netlist.inputs) :: !nodes;
      outs := canon.(g.Netlist.output) :: !outs)
    (Netlist.gates nl);
  List.iter
    (fun (d : Netlist.driver) ->
      nodes :=
        Ndriver (Option.map canon_src d.Netlist.guard, canon_src d.Netlist.source)
        :: !nodes;
      outs := canon.(d.Netlist.target) :: !outs)
    (Netlist.drivers nl);
  let nodes = Array.of_list (List.rev !nodes) in
  let node_out = Array.of_list (List.rev !outs) in
  (* CSR adjacency: count, prefix-sum, fill — consumers (class -> nodes
     reading it) drive the worklist, producers (class -> nodes writing
     it) drive re-evaluation *)
  let cons_cnt = Array.make n_classes 0 and prod_cnt = Array.make n_classes 0 in
  let iter_input_classes node f =
    List.iter (function Cnet c -> f c | Cconst _ -> ()) (node_inputs node)
  in
  Array.iteri
    (fun i node ->
      iter_input_classes node (fun c -> cons_cnt.(c) <- cons_cnt.(c) + 1);
      prod_cnt.(node_out.(i)) <- prod_cnt.(node_out.(i)) + 1)
    nodes;
  let offsets cnt =
    let off = Array.make (n_classes + 1) 0 in
    for c = 0 to n_classes - 1 do
      off.(c + 1) <- off.(c) + cnt.(c)
    done;
    off
  in
  let cons_off = offsets cons_cnt and prod_off = offsets prod_cnt in
  let cons_nodes = Array.make cons_off.(n_classes) 0 in
  let prod_nodes = Array.make prod_off.(n_classes) 0 in
  let cons_fill = Array.copy cons_off and prod_fill = Array.copy prod_off in
  Array.iteri
    (fun i node ->
      iter_input_classes node (fun c ->
          cons_nodes.(cons_fill.(c)) <- i;
          cons_fill.(c) <- cons_fill.(c) + 1);
      let o = node_out.(i) in
      prod_nodes.(prod_fill.(o)) <- i;
      prod_fill.(o) <- prod_fill.(o) + 1)
    nodes;
  (* register wiring: out class -> registers; in class -> out classes *)
  let regs_of_out = Array.make n_classes [] in
  let reg_consumers = Array.make n_classes [] in
  let reg_out_class = Array.make n_classes false in
  List.iter
    (fun (r : Netlist.reg) ->
      let oc = canon.(r.Netlist.rout) and ic = canon.(r.Netlist.rin) in
      regs_of_out.(oc) <- r :: regs_of_out.(oc);
      reg_consumers.(ic) <- oc :: reg_consumers.(ic);
      reg_out_class.(oc) <- true)
    (Netlist.regs nl);
  let input_class = Array.make n_classes false in
  List.iter
    (fun id -> input_class.(canon.(id)) <- true)
    (Check.top_input_nets design);
  (* kind per class (mux if any member is): the engines give a class
     with no driving value a kind-dependent default — boolean UNDEF,
     multiplex NOINFL *)
  let class_mux = Array.make n_classes false in
  Array.iter
    (fun (net : Netlist.net) ->
      if net.Netlist.kind = Etype.KMux then
        class_mux.(canon.(net.Netlist.id)) <- true)
    (Netlist.nets_array nl);
  let value = Array.make n_classes Bot in
  let av_of_src = function
    | Cconst v -> Const v
    | Cnet c -> value.(c)
  in
  (* gate transfer: Const inputs are exact, Top inputs are unknown —
     the partial evaluators fire exactly when the output is forced.
     With a Bot input an unforced output stays Bot (strict). *)
  let eval_node i =
    match nodes.(i) with
    | Ngate (op, inputs) ->
        let avs = List.map av_of_src inputs in
        let opt =
          List.map (function Const v -> Some v | Bot | Top -> None) avs
        in
        (match Optimize.eval_gate_const op opt with
        | Some v -> Const v
        | None -> if List.mem Bot avs then Bot else Top)
    | Ndriver (guard, source) -> (
        match guard with
        | None -> av_of_src source
        | Some g -> (
            match av_of_src g with
            | Bot -> Bot
            | Top ->
                (* the guard can be 0 (NOINFL), 1 (source) or UNDEF
                   (drives UNDEF): the join is already Top *)
                Top
            | Const v -> (
                match Logic.booleanize v with
                | Logic.Zero -> Const Logic.Noinfl
                | Logic.One -> av_of_src source
                | Logic.Undef | Logic.Noinfl -> Const Logic.Undef)))
  in
  (* abstract Zeus drive resolution over the producer contributions *)
  let resolve_abs = function
    | [] -> Bot (* no producers: the base cases below decide *)
    | contribs ->
        if List.mem Bot contribs then Bot
        else if List.mem Top contribs then Top
        else
          Const
            (Logic.resolve
               (List.map (function Const v -> v | _ -> assert false) contribs))
              .Logic.value
  in
  let eval_class c =
    if input_class.(c) then Top (* testbench-pokeable: CLK, RSET, pins *)
    else begin
      let contribs = ref [] in
      for k = prod_off.(c) to prod_off.(c + 1) - 1 do
        contribs := eval_node prod_nodes.(k) :: !contribs
      done;
      (* register widening: power-up value joined with everything the
         input can latch; NOINFL keeps the stored value *)
      let regv =
        List.fold_left
          (fun acc (r : Netlist.reg) ->
            let latched =
              match value.(canon.(r.Netlist.rin)) with
              | Bot -> Bot
              | Const Logic.Noinfl -> Bot
              | Const v -> Const (Logic.booleanize v)
              | Top -> Top
            in
            join acc (join (Const r.Netlist.rinit) latched))
          Bot regs_of_out.(c)
      in
      if !contribs = [] && regs_of_out.(c) = [] then
        (* producer-less: a boolean net reads UNDEF forever, a
           multiplex one floats *)
        Const (if class_mux.(c) then Logic.Noinfl else Logic.Undef)
      else
        let v = join (resolve_abs !contribs) regv in
        (* kind default: every producer provably firing NOINFL leaves a
           boolean class UNDEF — only multiplex classes are stuck-Z *)
        match v with
        | Const l
          when Logic.equal l Logic.Noinfl
               && (not class_mux.(c))
               && regs_of_out.(c) = [] ->
            Const Logic.Undef
        | v -> v
    end
  in
  (* FIFO worklist to the fixpoint *)
  let queue = Queue.create () and queued = Array.make n_classes false in
  let push c =
    if not queued.(c) then begin
      queued.(c) <- true;
      Queue.add c queue
    end
  in
  for c = 0 to n_classes - 1 do
    push c
  done;
  let steps = ref 0 in
  while not (Queue.is_empty queue) do
    let c = Queue.take queue in
    queued.(c) <- false;
    incr steps;
    let nv = join value.(c) (eval_class c) in
    if nv <> value.(c) then begin
      value.(c) <- nv;
      for k = cons_off.(c) to cons_off.(c + 1) - 1 do
        push node_out.(cons_nodes.(k))
      done;
      List.iter push reg_consumers.(c)
    end
  done;
  (* observability: backward closure from register inputs and root
     OUT/INOUT pins, through producer-node inputs *)
  let observable = Array.make n_classes false in
  let stack = ref [] in
  let mark c =
    if not observable.(c) then begin
      observable.(c) <- true;
      stack := c :: !stack
    end
  in
  List.iter
    (fun (r : Netlist.reg) -> mark canon.(r.Netlist.rin))
    (Netlist.regs nl);
  List.iter
    (fun (i : Netlist.instance) ->
      if not (String.contains i.Netlist.ipath '.') then
        List.iter
          (fun (_, mode, nets) ->
            match mode with
            | Etype.Out | Etype.Inout ->
                List.iter (fun id -> mark canon.(id)) nets
            | Etype.In -> ())
          i.Netlist.iports)
    (Netlist.instances nl);
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | c :: rest ->
        stack := rest;
        for k = prod_off.(c) to prod_off.(c + 1) - 1 do
          iter_input_classes nodes.(prod_nodes.(k)) mark
        done
  done;
  let cls =
    Array.map
      (function
        | Const Logic.Zero -> Const0
        | Const Logic.One -> Const1
        | Const Logic.Undef -> StuckX
        | Const Logic.Noinfl -> StuckZ
        | Top | Bot -> Varying)
      value
  in
  {
    n_classes;
    canon;
    rep;
    value;
    cls;
    observable;
    input_class;
    reg_out_class;
    producers = prod_cnt;
    steps = !steps;
  }

let value_of_net t id = t.value.(t.canon.(id))
let classification_of_net t id = t.cls.(t.canon.(id))

let counts t =
  let c0 = ref 0 and c1 = ref 0 and cx = ref 0 and cz = ref 0 and cv = ref 0 in
  Array.iter
    (function
      | Const0 -> incr c0
      | Const1 -> incr c1
      | StuckX -> incr cx
      | StuckZ -> incr cz
      | Varying -> incr cv)
    t.cls;
  (!c0, !c1, !cx, !cz, !cv)

let unobservable_count t =
  Array.fold_left (fun acc o -> if o then acc else acc + 1) 0 t.observable
