(* Diagnostics: located errors and warnings, collected during every phase
   (lexing, parsing, elaboration, static checking, linting, simulation). *)

type severity =
  | Error
  | Warning

type kind =
  | Lex_error
  | Parse_error
  | Name_error (* undeclared / duplicate identifiers, uses-list violations *)
  | Type_error (* static type rules of section 4.7 *)
  | Width_error (* basic-substructure count mismatches *)
  | Assign_error (* single-assignment / aliasing rules *)
  | Cycle_error (* combinational feedback not through REG *)
  | Port_error (* unused-port rule of section 4.1 *)
  | Layout_error
  | Runtime_error (* simulator checks: multiple drives, undefined reads *)
  | Order_error (* SEQUENTIAL/PARALLEL consistency, section 4.5 *)
  | Limit_error (* elaboration limits: runaway recursion etc. *)
  | Lint_error (* the lint engine: drive conflicts, UNDEF, dead hardware *)

(* Stable diagnostic codes.  The lint engine and the simulator's runtime
   checks share these, so a static finding and the dynamic violation it
   predicts carry the same code.  Z1xx: drive conflicts (section 4.7's
   "burning transistors"); Z2xx: UNDEF reachability; Z3xx: dead
   hardware; Z4xx: the modular (per-component-type) summary analysis;
   Z5xx: the whole-design abstract interpretation behind [zeusc opt];
   Z6xx: the bounded sequential prover behind [zeusc prove].
   Codes are append-only — never renumber. *)
module Code = struct
  let drive_conflict = "Z101"
  let drive_unproven = "Z102"
  let undriven_read = "Z201"
  let undef_only = "Z202"
  let dead_branch = "Z301"
  let dead_instance = "Z302"
  let modular_conflict = "Z401"
  let modular_unproven = "Z402"
  let modular_cycle = "Z403"
  let modular_range = "Z404"
  let modular_recursion = "Z405"
  let modular_coarse = "Z406"
  let absint_constant = "Z501"
  let absint_stuck = "Z502"
  let absint_unobservable = "Z503"
  let seq_uninitialized = "Z601"
  let seq_undef_escape = "Z602"
  let seq_conflict_reachable = "Z603"

  let all =
    [
      ( drive_conflict,
        "two drivers of one net can be enabled in the same cycle (a \
         power-ground short; reported statically with a witness, and at \
         runtime by the simulator's multiple-drive check)" );
      ( drive_unproven,
        "driver exclusivity could not be proved within the solver budget — \
         the net relies on the runtime multiple-drive check" );
      ( undriven_read,
        "net is read but never driven: it reads UNDEF forever" );
      ( undef_only,
        "net is driven, but every value it can ever carry is UNDEF (or \
         high-impedance)" );
      ( dead_branch,
        "conditional branch guard is statically false: the driver can \
         never fire (dead hardware surviving constant evaluation)" );
      ( dead_instance,
        "instance outputs reach no output port, register or probe: the \
         hardware is dead" );
      ( modular_conflict,
        "two drivers of one port or signal of a component type can be \
         enabled in the same cycle, proved from the type's summary alone \
         with a witness over input ports" );
      ( modular_unproven,
        "driver exclusivity of a component type could not be decided at \
         summary level — elaboration-time lint and the runtime check guard \
         it" );
      ( modular_cycle,
        "a combinational cycle not broken by a register may exist for some \
         parameter value of a component type (type-level reachability)" );
      ( modular_range,
        "a parameter value reaching this component type makes an ARRAY \
         range empty, an index out of bounds or a width non-positive" );
      ( modular_recursion,
        "recursion of a component type could not be proved well-founded: \
         no parameter provably decreases along the WHEN chain" );
      ( modular_coarse,
        "the interval abstraction of the generic parameters is too coarse \
         to decide this check — it falls back to full elaboration" );
      ( absint_constant,
        "the abstract interpretation proves the net carries the same \
         defined value every cycle under all inputs — zeusc opt folds it \
         to a constant" );
      ( absint_stuck,
        "the abstract interpretation proves the net is stuck: every cycle \
         it reads UNDEF, or it is never driven and floats (high \
         impedance)" );
      ( absint_unobservable,
        "the net is driven but cannot reach any register or root output \
         port — the logic producing it is unobservable and zeusc opt \
         removes it" );
      ( seq_uninitialized,
        "register is never initialized within the proof depth: k cycles \
         after a RSET pulse it can still hold UNDEF (reset coverage)" );
      ( seq_undef_escape,
        "power-up UNDEF escapes the reset cone: after reset settles, an \
         observable net (one feeding a register or root output) can still \
         read UNDEF that originates in an uninitialized register" );
      ( seq_conflict_reachable,
        "a runtime drive conflict is reachable within k cycles of power-up: \
         the sequential prover found a concrete stimulus trace that makes \
         two drivers of the net fire in the same cycle" );
    ]

  let description c = List.assoc_opt c all

  (* Uniform --suppress validation used by every subcommand: the unknown
     codes, in user order, de-duplicated.  Empty means all valid. *)
  let unknown codes =
    let seen = Hashtbl.create 8 in
    List.filter
      (fun c ->
        let bad = not (List.mem_assoc c all) in
        let fresh = not (Hashtbl.mem seen c) in
        Hashtbl.replace seen c ();
        bad && fresh)
      codes

  let valid_codes_message () =
    String.concat ", " (List.map fst all)
end

type t = {
  severity : severity;
  kind : kind;
  code : string option; (* stable Zxxx code, for lint-style findings *)
  loc : Loc.t;
  message : string;
}

let kind_to_string = function
  | Lex_error -> "lex"
  | Parse_error -> "parse"
  | Name_error -> "name"
  | Type_error -> "type"
  | Width_error -> "width"
  | Assign_error -> "assign"
  | Cycle_error -> "cycle"
  | Port_error -> "port"
  | Layout_error -> "layout"
  | Runtime_error -> "runtime"
  | Order_error -> "order"
  | Limit_error -> "limit"
  | Lint_error -> "lint"

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"

let pp ppf d =
  Fmt.pf ppf "%a: %s(%s)%a: %s" Loc.pp d.loc
    (severity_to_string d.severity)
    (kind_to_string d.kind)
    Fmt.(option (fun ppf c -> pf ppf "[%s]" c))
    d.code d.message

let to_string d = Fmt.str "%a" pp d

(* A mutable bag of diagnostics threaded through a compilation phase. *)
module Bag = struct
  type diag = t

  type t = {
    mutable diags : diag list; (* newest first *)
    mutable error_count : int;
  }

  let create () = { diags = []; error_count = 0 }

  let add bag d =
    bag.diags <- d :: bag.diags;
    if d.severity = Error then bag.error_count <- bag.error_count + 1

  let error ?code bag kind loc fmt =
    Fmt.kstr
      (fun message -> add bag { severity = Error; kind; code; loc; message })
      fmt

  let warning ?code bag kind loc fmt =
    Fmt.kstr
      (fun message -> add bag { severity = Warning; kind; code; loc; message })
      fmt

  let has_errors bag = bag.error_count > 0

  let all bag = List.rev bag.diags

  let errors bag = List.filter (fun d -> d.severity = Error) (all bag)

  let pp ppf bag = Fmt.(list ~sep:(any "@\n") pp) ppf (all bag)
end
