(** Diagnostics: located errors and warnings, collected by every phase of
    the pipeline (lexing, parsing, elaboration, static checking,
    linting). *)

type severity =
  | Error
  | Warning

(** What rule or phase produced the diagnostic. *)
type kind =
  | Lex_error
  | Parse_error
  | Name_error  (** undeclared/duplicate identifiers, USES violations *)
  | Type_error  (** static type rules of report section 4.7 *)
  | Width_error  (** basic-substructure count mismatches *)
  | Assign_error  (** single-assignment / aliasing rules *)
  | Cycle_error  (** combinational feedback not through REG *)
  | Port_error  (** the unused-port rule of section 4.1 *)
  | Layout_error
  | Runtime_error  (** simulator checks: multiple drives *)
  | Order_error  (** SEQUENTIAL/PARALLEL consistency, section 4.5 *)
  | Limit_error  (** elaboration limits: runaway recursion *)
  | Lint_error  (** the lint engine: conflicts, UNDEF, dead hardware *)

(** Stable diagnostic codes, shared between the static lint engine and
    the simulator's runtime checks so that static findings and dynamic
    violations correlate.  [Z1xx] drive conflicts, [Z2xx] UNDEF
    reachability, [Z3xx] dead hardware.  Append-only. *)
module Code : sig
  val drive_conflict : string  (** Z101 *)

  val drive_unproven : string  (** Z102 *)

  val undriven_read : string  (** Z201 *)

  val undef_only : string  (** Z202 *)

  val dead_branch : string  (** Z301 *)

  val dead_instance : string  (** Z302 *)

  val modular_conflict : string  (** Z401 *)

  val modular_unproven : string  (** Z402 *)

  val modular_cycle : string  (** Z403 *)

  val modular_range : string  (** Z404 *)

  val modular_recursion : string  (** Z405 *)

  val modular_coarse : string  (** Z406 *)

  val absint_constant : string  (** Z501 *)

  val absint_stuck : string  (** Z502 *)

  val absint_unobservable : string  (** Z503 *)

  val seq_uninitialized : string  (** Z601 *)

  val seq_undef_escape : string  (** Z602 *)

  val seq_conflict_reachable : string  (** Z603 *)

  (** Every code with its one-line meaning, in code order. *)
  val all : (string * string) list

  val description : string -> string option

  (** [unknown codes] is the sub-list of [codes] that are not registered,
      in user order, de-duplicated — the uniform [--suppress] validation
      every subcommand shares.  Empty means all codes are valid. *)
  val unknown : string list -> string list

  (** The comma-separated list of all registered codes, for error
      messages. *)
  val valid_codes_message : unit -> string
end

type t = {
  severity : severity;
  kind : kind;
  code : string option;  (** stable Zxxx code, for lint-style findings *)
  loc : Loc.t;
  message : string;
}

val kind_to_string : kind -> string
val severity_to_string : severity -> string
val pp : t Fmt.t
val to_string : t -> string

(** A mutable bag of diagnostics threaded through a compilation. *)
module Bag : sig
  type diag := t
  type t

  val create : unit -> t
  val add : t -> diag -> unit

  (** [error bag kind loc fmt ...] formats and records an error. *)
  val error :
    ?code:string ->
    t ->
    kind ->
    Loc.t ->
    ('a, Format.formatter, unit, unit) format4 ->
    'a

  val warning :
    ?code:string ->
    t ->
    kind ->
    Loc.t ->
    ('a, Format.formatter, unit, unit) format4 ->
    'a

  val has_errors : t -> bool

  (** All diagnostics in the order they were recorded. *)
  val all : t -> diag list

  (** Only the errors, in order. *)
  val errors : t -> diag list

  val pp : t Fmt.t
end
