(* The benchmark harness: regenerates every table and figure of the Zeus
   report's worked examples (the "evaluation" of a 1983 language report),
   then times the performance-shaped claims with Bechamel.

   Experiment index (see DESIGN.md / EXPERIMENTS.md):
     E1  adders             Fig 3.2.2 + section 10 "Adders"
     E2  blackjack          section 10 FSM state trace
     E3  htree              section 10, linear layout area
     E4  patternmatch       section 10 + the computation-sequence table
     E5  evalseq            section 8 "A possible evaluation sequence"
     E6  routing            section 4.2 HISDL routing network
     E7  typerules          section 4.7 type rule tables (1), (2), (3)
     E8  simcmp             firing vs fixpoint vs relaxation scheduling
     E9  runtime-checks     the NP-completeness-motivated runtime check
     E13 incremental        cross-cycle incremental engine vs firing
     E14 modular            modular summary analysis vs elaborate+lint
     E15 parallel           per-level domain-parallel engine vs incremental
     E16 opt                proof-carrying reduction vs plain simulation
     E17 compiled           compiled bytecode engine vs incremental
     E18 batch              batch engine (whole-run sharding + lane
                            packing), runs/second vs serial incremental
     E19 prove              bounded sequential prover: proof cost and
                            the compiled engine with conflict checks
                            discharged

   `dune exec bench/main.exe` prints all report tables and then runs the
   timing benchmarks (pass --no-timing to skip them).  E13 also writes
   machine-readable results to BENCH_sim.json, E14 to BENCH_modular.json,
   E15 to BENCH_par.json, E16 to BENCH_opt.json, E17 to
   BENCH_compiled.json, E18 to BENCH_batch.json and E19 to
   BENCH_prove.json.  Pass --smoke to run
   only the (shortened) simulator, modular, parallel, reduction and
   batch benches and the JSON dumps — the CI mode; --batch-smoke runs
   E18 alone at 2 domains (the CI batch artifact job). *)

open Zeus

let section id title =
  Fmt.pr "@.=== %s: %s ===@." id title

let compile src =
  match Zeus.compile src with
  | Ok d -> d
  | Error diags ->
      Fmt.epr "bench compile error: %a@." Fmt.(list Diag.pp) diags;
      exit 1

(* ------------------------------------------------------------------ *)
(* E1: adders                                                           *)
(* ------------------------------------------------------------------ *)

let e1_adders () =
  section "E1" "full adder truth table and rippleCarry(n) sweep";
  let d = compile Corpus.adder4 in
  let sim = Sim.create d in
  Fmt.pr "fulladder via rippleCarry(4), bit 1 (Fig 3.2.2):@.";
  Fmt.pr "  a b cin | cout s@.";
  List.iter
    (fun (a, b, c) ->
      Sim.poke_int_lsb sim "adder.a" a;
      Sim.poke_int_lsb sim "adder.b" b;
      Sim.poke_bool sim "adder.cin" (c = 1);
      Sim.step sim;
      let s = Sim.peek sim "adder.s[1]" in
      let h = Sim.peek sim "adder.h[2]" in
      Fmt.pr "  %d %d  %d  |  %a    %a@." a b c
        Fmt.(list ~sep:nop Logic.pp) h
        Fmt.(list ~sep:nop Logic.pp) s)
    [ (0,0,0); (0,0,1); (0,1,0); (0,1,1); (1,0,0); (1,0,1); (1,1,0); (1,1,1) ];
  Fmt.pr "rippleCarry(n) correctness sweep (1000 random adds each):@.";
  Fmt.pr "  %6s %8s %8s %8s %8s@." "n" "nets" "gates" "checks" "mismatch";
  let rng = Random.State.make [| 42 |] in
  List.iter
    (fun n ->
      let d = compile (Corpus.adder_n n) in
      let sim = Sim.create d in
      let mism = ref 0 in
      let mask = (1 lsl min n 30) - 1 in
      for _ = 1 to 1000 do
        let a = Random.State.bits rng land mask
        and b = Random.State.bits rng land mask in
        Sim.poke_int_lsb sim "adder.a" a;
        Sim.poke_int_lsb sim "adder.b" b;
        Sim.poke_bool sim "adder.cin" false;
        Sim.step sim;
        let want = (a + b) land ((1 lsl n) - 1) in
        if n <= 30 && Sim.peek_int_lsb sim "adder.s" <> Some want then incr mism
      done;
      let nl = d.Elaborate.netlist in
      Fmt.pr "  %6d %8d %8d %8d %8d@." n (Netlist.net_count nl)
        (List.length (Netlist.gates nl))
        1000 !mism)
    [ 4; 8; 16; 24; 30 ]

(* ------------------------------------------------------------------ *)
(* E2: blackjack                                                        *)
(* ------------------------------------------------------------------ *)

let e2_blackjack () =
  section "E2" "Blackjack FSM state trace (section 10)";
  let d = compile Corpus.blackjack in
  let sim = Sim.create d in
  Sim.poke_bool sim "bj.ycard" false;
  Sim.poke_int sim "bj.value" 0;
  Sim.reset sim;
  let state_name = function
    | Some 0 -> "start" | Some 1 -> "read" | Some 2 -> "sum"
    | Some 3 -> "firstace" | Some 4 -> "test" | Some 5 -> "end"
    | _ -> "?" in
  let cards = ref [ 10; 9 ] in
  Fmt.pr "hand 10,9 (expect: stand at 19):@.";
  Fmt.pr "  %5s %-9s %5s %4s %5s %5s@." "cycle" "state" "score" "hit" "stand" "broke";
  let dealt = ref false in
  for cyc = 1 to 14 do
    let st = Sim.peek_int sim "bj.state.out" in
    if st <> Some 1 then dealt := false;
    (match (st, !cards) with
    | Some 1, c :: rest when not !dealt ->
        Sim.poke_int sim "bj.value" c;
        Sim.poke_bool sim "bj.ycard" true;
        cards := rest;
        dealt := true
    | _ -> Sim.poke_bool sim "bj.ycard" false);
    Sim.step sim;
    Fmt.pr "  %5d %-9s %5s %4s %5s %5s@." cyc
      (state_name (Sim.peek_int sim "bj.state.out"))
      (match Sim.peek_int sim "bj.score.out" with
      | Some s -> string_of_int s
      | None -> "-")
      (Logic.to_string (Sim.peek_bit sim "bj.hit"))
      (Logic.to_string (Sim.peek_bit sim "bj.stand"))
      (Logic.to_string (Sim.peek_bit sim "bj.broke"))
  done;
  Fmt.pr "runtime errors: %d@." (List.length (Sim.runtime_errors sim))

(* ------------------------------------------------------------------ *)
(* E3: H-tree area                                                      *)
(* ------------------------------------------------------------------ *)

let e3_htree () =
  section "E3" "H-tree layout area is linear in the number of leaves";
  Fmt.pr "  %8s %8s %8s %8s %10s@." "n" "width" "height" "area" "area/n";
  List.iter
    (fun n ->
      let d = compile (Corpus.htree n) in
      match Floorplan.of_design d "a" with
      | Some plan ->
          let a = Floorplan.area plan in
          Fmt.pr "  %8d %8d %8d %8d %10.2f@." n plan.Floorplan.width
            plan.Floorplan.height a
            (float_of_int a /. float_of_int n)
      | None -> Fmt.pr "  %8d (no plan)@." n)
    [ 1; 4; 16; 64; 256; 1024; 4096 ]

(* ------------------------------------------------------------------ *)
(* E4: pattern matching                                                 *)
(* ------------------------------------------------------------------ *)

let e4_patternmatch () =
  section "E4" "systolic pattern matcher computation sequence (section 10)";
  let d = compile (Corpus.patternmatch 3) in
  let sim = Sim.create d in
  List.iter (fun p -> Sim.poke_bool sim p false)
    [ "match.pattern"; "match.string"; "match.endofpattern"; "match.wild";
      "match.resultin" ];
  Sim.reset sim;
  let pattern = [ 1; 0 ] and text = [ 1; 0; 1; 0; 1; 0; 1; 0 ] in
  let plen = List.length pattern in
  Fmt.pr "pattern 10 (recirculating), text 10101010, one item every second \
          cycle:@.";
  Fmt.pr "  %5s %3s %3s %3s %6s@." "cycle" "pat" "eop" "str" "result";
  for cyc = 0 to 35 do
    let idle = cyc mod 2 = 1 in
    let p, e, s =
      if idle then (false, false, false)
      else begin
        let i = cyc / 2 in
        let pi = i mod (plen + 1) in
        ( pi < plen && List.nth pattern pi = 1,
          pi = plen,
          match List.nth_opt text i with Some 1 -> true | _ -> false )
      end
    in
    Sim.poke_bool sim "match.pattern" p;
    Sim.poke_bool sim "match.endofpattern" e;
    Sim.poke_bool sim "match.string" s;
    Sim.step sim;
    let r = Sim.peek_bit sim "match.result" in
    Fmt.pr "  %5d %3d %3d %3d %6s%s@." cyc (Bool.to_int p) (Bool.to_int e)
      (Bool.to_int s) (Logic.to_string r)
      (if Logic.equal r Logic.One then "  <- match" else "")
  done;
  Fmt.pr "runtime errors: %d@." (List.length (Sim.runtime_errors sim))

(* ------------------------------------------------------------------ *)
(* E5: evaluation sequence (section 8)                                  *)
(* ------------------------------------------------------------------ *)

let e5_evalseq () =
  section "E5" "a possible evaluation sequence (section 8 example)";
  let d = compile Corpus.section8_example in
  let sim = Sim.create d in
  Sim.set_trace sim true;
  List.iter
    (fun (p, v) -> Sim.poke_bool sim p v)
    [ ("top.a", true); ("top.b", true); ("top.cc", false); ("top.x", true);
      ("top.y", false); ("top.rin", true) ];
  Sim.step sim;
  Fmt.pr "firing order (signal(value), cf. the report's \
          \"2(0),rout(0),rin(1),...\"):@.  ";
  List.iter
    (fun (n, v) -> Fmt.pr "%s(%a) " n Logic.pp v)
    (List.filter
       (fun (n, _) -> not (String.contains n '#'))
       (Sim.trace_last_cycle sim));
  Fmt.pr "@."

(* ------------------------------------------------------------------ *)
(* E6: routing network                                                  *)
(* ------------------------------------------------------------------ *)

let e6_routing () =
  section "E6" "recursive HISDL routing network (section 4.2)";
  Fmt.pr "  %6s %9s %9s %8s %8s@." "n" "routers" "expected" "nets" "drivers";
  List.iter
    (fun n ->
      let d = compile (Corpus.routing_network n) in
      let nl = d.Elaborate.netlist in
      let routers =
        List.length
          (List.filter
             (fun (i : Netlist.instance) -> i.Netlist.itype = "router")
             (Netlist.instances nl))
      in
      let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
      Fmt.pr "  %6d %9d %9d %8d %8d@." n routers (n / 2 * log2 n)
        (Netlist.net_count nl)
        (List.length (Netlist.drivers nl)))
    [ 2; 4; 8; 16; 32; 64 ];
  (* permutation property: all-swap headers reverse the butterfly *)
  let d = compile (Corpus.routing_network 8) in
  let sim = Sim.create d in
  for i = 0 to 7 do
    Sim.poke_int sim (Printf.sprintf "net.input[%d]" i) (512 + i)
  done;
  Sim.step sim;
  Fmt.pr "all-swap routing of 512+i headers: ";
  for i = 0 to 7 do
    Fmt.pr "%s "
      (match Sim.peek_int sim (Printf.sprintf "net.output[%d]" i) with
      | Some v -> string_of_int (v - 512)
      | None -> "?")
  done;
  Fmt.pr "@."

(* ------------------------------------------------------------------ *)
(* E7: the static type rule tables                                      *)
(* ------------------------------------------------------------------ *)

let e7_typerules () =
  section "E7" "type rules (1) and (2) of section 4.7, as decided by the checker";
  let verdict src =
    let _, diags = Zeus.elaborate_with_diags src in
    if List.exists (fun (d : Diag.t) -> d.Diag.severity = Diag.Error) diags
    then "illegal"
    else "legal"
  in
  let cond target source =
    Printf.sprintf
      "TYPE t = COMPONENT (IN b: boolean; IN eb: boolean; em: multiplex; \
       OUT y: boolean) IS SIGNAL x: %s; BEGIN IF b THEN x := %s END; y := \
       x END; SIGNAL s: t;"
      target
      (if source = "boolean" then "eb" else "em")
  in
  Fmt.pr "type rules (1): IF b THEN x := e END (x a local signal)@.";
  Fmt.pr "  %-10s| %-10s %-10s@." "x \\ e" "boolean" "multiplex";
  List.iter
    (fun t ->
      Fmt.pr "  %-10s| %-10s %-10s@." t
        (verdict (cond t "boolean"))
        (verdict (cond t "multiplex")))
    [ "boolean"; "multiplex" ];
  Fmt.pr "exception 1 (boolean formal OUT / instance IN): %s@."
    (verdict
       "TYPE t = COMPONENT (IN b,c: boolean; OUT y: boolean) IS BEGIN IF b \
        THEN y := c END END; SIGNAL s: t;");
  Fmt.pr "@.type rules (2): x == y@.";
  let alias l r =
    match (l, r) with
    | "boolean", "boolean" ->
        "TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS SIGNAL u,v: \
         boolean; BEGIN u := a; u == v; y := v END; SIGNAL s: t;"
    | "boolean", "multiplex" | "multiplex", "boolean" ->
        "TYPE t = COMPONENT (em: multiplex; IN a: boolean; OUT y: boolean) \
         IS SIGNAL u: boolean; BEGIN u == em; y := u END; SIGNAL s: t;"
    | _ ->
        "TYPE t = COMPONENT (em,fm: multiplex; IN a: boolean) IS BEGIN em \
         == fm; IF a THEN em := 1 END END; SIGNAL s: t;"
  in
  Fmt.pr "  %-10s| %-10s %-10s@." "x \\ y" "boolean" "multiplex";
  List.iter
    (fun l ->
      Fmt.pr "  %-10s| %-10s %-10s@." l
        (verdict (alias l "boolean"))
        (verdict (alias l "multiplex")))
    [ "boolean"; "multiplex" ];
  Fmt.pr "exception 1 (OUT formal aliased to multiplex): %s@."
    (verdict
       "TYPE t = COMPONENT (em: multiplex; IN a: boolean; OUT y: boolean) \
        IS BEGIN y == em; IF a THEN em := 1 END END; SIGNAL s: t;")

(* ------------------------------------------------------------------ *)
(* E8: simulator scheduling comparison                                  *)
(* ------------------------------------------------------------------ *)

let visits_of engine d pokes =
  let sim = Sim.create ~engine d in
  List.iter (fun (p, v) -> Sim.poke_int_lsb sim p v) pokes;
  Sim.step sim;
  Sim.node_visits sim

let e8_simcmp () =
  section "E8"
    "node visits per cycle: firing (section 8) vs strict-firing ablation \
     vs sweep-to-fixpoint vs relaxation";
  Fmt.pr "  %-18s %8s %6s %9s %8s %10s %12s@." "design" "nodes" "depth"
    "firing" "strict" "fixpoint" "relaxation";
  List.iter
    (fun (name, src, pokes) ->
      let d = compile src in
      let nodes =
        List.length (Netlist.gates d.Elaborate.netlist)
        + List.length (Netlist.drivers d.Elaborate.netlist)
      in
      let depth = (Stats.of_netlist d.Elaborate.netlist).Stats.depth in
      let f = visits_of Sim.Firing d pokes
      and fs = visits_of Sim.Firing_strict d pokes
      and fx = visits_of Sim.Fixpoint d pokes
      and rx = visits_of Sim.Relaxation d pokes in
      Fmt.pr "  %-18s %8d %6d %9d %8d %10d %12d@." name nodes depth f fs fx rx)
    [
      ("rippleCarry(8)", Corpus.adder_n 8, [ ("adder.a", 255); ("adder.b", 1) ]);
      ("rippleCarry(32)", Corpus.adder_n 32,
       [ ("adder.a", 0xFFFFFFF); ("adder.b", 1) ]);
      ("rippleCarry(64)", Corpus.adder_n 64,
       [ ("adder.a", 0xFFFFFFF); ("adder.b", 1) ]);
      ("patternmatch(9)", Corpus.patternmatch 9, []);
      ("blackjack", Corpus.blackjack, []);
      ("routing(16)", Corpus.routing_network 16, []);
      ("am2901", Corpus.am2901, []);
      ("stack(16x8)", Corpus.stack ~depth:16 ~width:8, []);
      ("dictionary(16x8)", Corpus.dictionary ~slots:16 ~keybits:8, []);
    ];
  Fmt.pr "(the firing evaluator visits each node O(1) times; the sweeping \
          baselines pay one full sweep per logic level)@."

(* ------------------------------------------------------------------ *)
(* E9: runtime checks                                                   *)
(* ------------------------------------------------------------------ *)

let e9_runtime_checks () =
  section "E9"
    "runtime multiple-assignment checks (statically undecidable, section \
     4.7)";
  (* a mux driven under two input-dependent guards: only the runtime can
     tell whether both fire *)
  let d =
    compile
      "TYPE t = COMPONENT (IN b,c,x,y: boolean; m: multiplex) IS BEGIN IF b \
       THEN m := x END; IF c THEN m := y END END; SIGNAL s: t;"
  in
  let sim = Sim.create d in
  Fmt.pr "  %3s %3s | %5s %9s@." "b" "c" "m" "conflict";
  List.iter
    (fun (b, c) ->
      let before = List.length (Sim.runtime_errors sim) in
      Sim.poke_bool sim "s.b" (b = 1);
      Sim.poke_bool sim "s.c" (c = 1);
      Sim.poke_bool sim "s.x" true;
      Sim.poke_bool sim "s.y" false;
      Sim.step sim;
      let after = List.length (Sim.runtime_errors sim) in
      Fmt.pr "  %3d %3d | %5s %9s@." b c
        (Logic.to_string (Sim.peek_bit sim "s.m"))
        (if after > before then "DETECTED" else "-"))
    [ (0, 0); (0, 1); (1, 0); (1, 1) ];
  (* detection rate over random guard workloads *)
  let rng = Random.State.make [| 7 |] in
  let injected = ref 0 and detected = ref 0 in
  for _ = 1 to 1000 do
    let b = Random.State.bool rng and c = Random.State.bool rng in
    let before = List.length (Sim.runtime_errors sim) in
    Sim.poke_bool sim "s.b" b;
    Sim.poke_bool sim "s.c" c;
    Sim.step sim;
    let after = List.length (Sim.runtime_errors sim) in
    if b && c then incr injected;
    if after > before then incr detected
  done;
  Fmt.pr "random workload: %d double-drives injected, %d detected@."
    !injected !detected

(* ------------------------------------------------------------------ *)
(* E10: ablation — lazy vs eager instantiation (section 4.2)            *)
(* ------------------------------------------------------------------ *)

let e10_lazy_ablation () =
  section "E10"
    "ablation: lazy instantiation (\"hardware only generated if used\") vs \
     eager";
  let elaborate ~eager src =
    let bag = Diag.Bag.create () in
    match Parser.program ~bag src with
    | None, _ -> Error "parse"
    | Some prog, _ ->
        let d = Elaborate.program ~bag ~eager prog in
        if Diag.Bag.has_errors bag then
          Error
            (match Diag.Bag.errors bag with
            | e :: _ -> e.Diag.message
            | [] -> "?")
        else Ok (List.length (Netlist.instances d.Elaborate.netlist))
  in
  Fmt.pr "  %-16s %14s %s@." "design" "lazy" "eager";
  List.iter
    (fun (name, src) ->
      let show = function
        | Ok n -> Fmt.str "%d instances" n
        | Error e ->
            let e =
              if String.length e > 48 then String.sub e 0 48 ^ "..." else e
            in
            "DIVERGES: " ^ e
      in
      Fmt.pr "  %-16s %14s %s@." name
        (show (elaborate ~eager:false src))
        (show (elaborate ~eager:true src)))
    [
      ("routing(8)", Corpus.routing_network 8);
      ("htree(16)", Corpus.htree 16);
      ("tree(8)", Corpus.tree_recursive 8);
      ("adder(8)", Corpus.adder_n 8);
    ]

(* ------------------------------------------------------------------ *)
(* E11: explicit layout vs automatic placement (the silicon-compiler    *)
(* application of section 9)                                            *)
(* ------------------------------------------------------------------ *)

let e11_autoplace () =
  section "E11"
    "designer layout (section 6) vs automatic dataflow placement: \
     estimated wirelength";
  Fmt.pr "  %-18s %10s %12s %10s %12s@." "design" "cells" "explicit-wl"
    "auto-wl" "auto-shape";
  List.iter
    (fun (name, src, top) ->
      let d = compile src in
      let explicit = Floorplan.of_design d top in
      let auto = Autoplace.place d top in
      match (explicit, auto) with
      | Some e, Some a ->
          Fmt.pr "  %-18s %10d %12d %10d %9dx%d@." name
            (List.length a.Floorplan.cells)
            (Autoplace.wirelength d e)
            (Autoplace.wirelength d a)
            a.Floorplan.width a.Floorplan.height
      | _ -> Fmt.pr "  %-18s (no plan)@." name)
    [
      ("rippleCarry(8)", Corpus.adder_n 8, "adder");
      ("rippleCarry(32)", Corpus.adder_n 32, "adder");
      ("patternmatch(9)", Corpus.patternmatch 9, "match");
      ("stack(8x4)", Corpus.stack ~depth:8 ~width:4, "st");
    ]

(* ------------------------------------------------------------------ *)
(* E12: the optimizer (constant propagation + dead logic)               *)
(* ------------------------------------------------------------------ *)

let e12_optimize () =
  section "E12"
    "netlist optimization: nodes removed while observables stay exact";
  Fmt.pr "  %-18s %8s %8s %9s %9s %7s@." "design" "gates" "gates'" "drivers"
    "drivers'" "consts";
  List.iter
    (fun (name, src) ->
      let d = compile src in
      let _, r = Optimize.run d in
      Fmt.pr "  %-18s %8d %8d %9d %9d %7d@." name r.Optimize.gates_before
        r.Optimize.gates_after r.Optimize.drivers_before
        r.Optimize.drivers_after r.Optimize.constants_found)
    [
      ("adder(32)", Corpus.adder_n 32);
      ("blackjack", Corpus.blackjack);
      ("patternmatch(9)", Corpus.patternmatch 9);
      ("am2901", Corpus.am2901);
      ("routing(16)", Corpus.routing_network 16);
      ("dictionary(16x8)", Corpus.dictionary ~slots:16 ~keybits:8);
    ]

(* ------------------------------------------------------------------ *)
(* A1: the abstract's remaining example classes                         *)
(* ------------------------------------------------------------------ *)

let a1_machines () =
  section "A1"
    "AM2901 / systolic stack / dictionary machine vs golden models";
  (* AM2901: random instruction streams against the reference model *)
  let d = compile Corpus.am2901 in
  let sim = Sim.create d in
  let model = Refmodel.Am2901.create () in
  let agree = ref 0 and total = 500 in
  (* initialise the register file through the datapath *)
  for reg = 0 to 15 do
    Sim.poke_int sim "alu.i" 0o703;
    Sim.poke_int sim "alu.a" 0;
    Sim.poke_int sim "alu.b" reg;
    Sim.poke_int sim "alu.d" 0;
    Sim.poke_bool sim "alu.cin" false;
    Sim.step sim;
    ignore (Refmodel.Am2901.step model ~i:0o703 ~a:0 ~b:reg ~d:0 ~cin:false)
  done;
  Sim.poke_int sim "alu.i" 0o700;
  Sim.step sim;
  ignore (Refmodel.Am2901.step model ~i:0o700 ~a:0 ~b:0 ~d:0 ~cin:false);
  let rng = Random.State.make [| 2901 |] in
  for _ = 1 to total do
    let i = Random.State.int rng 512
    and a = Random.State.int rng 16
    and b = Random.State.int rng 16
    and dd = Random.State.int rng 16
    and cin = Random.State.bool rng in
    Sim.poke_int sim "alu.i" i;
    Sim.poke_int sim "alu.a" a;
    Sim.poke_int sim "alu.b" b;
    Sim.poke_int sim "alu.d" dd;
    Sim.poke_bool sim "alu.cin" cin;
    Sim.step sim;
    let r = Refmodel.Am2901.step model ~i ~a ~b ~d:dd ~cin in
    if Sim.peek_int sim "alu.y" = Some r.Refmodel.Am2901.y then incr agree
  done;
  Fmt.pr "  am2901: %d/%d random instructions agree with the golden model \
          (runtime errors: %d)@."
    !agree total
    (List.length (Sim.runtime_errors sim));
  Fmt.pr "  netlist: %s@." (Netlist.stats d.Elaborate.netlist);
  (* systolic stack: constant-cycle push/pop *)
  Fmt.pr "  stack depth sweep (one cycle per operation at any depth):@.";
  Fmt.pr "    %8s %8s %8s@." "depth" "nets" "regs";
  List.iter
    (fun depth ->
      let d = compile (Corpus.stack ~depth ~width:8) in
      Fmt.pr "    %8d %8d %8d@." depth
        (Netlist.net_count d.Elaborate.netlist)
        (List.length (Netlist.regs d.Elaborate.netlist)))
    [ 4; 8; 16; 32; 64 ];
  (* dictionary *)
  Fmt.pr "  dictionary slots sweep:@.";
  Fmt.pr "    %8s %8s %8s@." "slots" "nets" "gates";
  List.iter
    (fun slots ->
      let d = compile (Corpus.dictionary ~slots ~keybits:8) in
      Fmt.pr "    %8d %8d %8d@." slots
        (Netlist.net_count d.Elaborate.netlist)
        (List.length (Netlist.gates d.Elaborate.netlist)))
    [ 4; 8; 16; 32 ];
  (* systolic priority queue: constant-cycle insert/extract-min *)
  let d = compile (Corpus.priority_queue ~slots:8 ~width:4) in
  let sim = Sim.create d in
  Sim.poke_bool sim "pq.ins" false;
  Sim.poke_bool sim "pq.ext" false;
  Sim.poke_int sim "pq.din" 0;
  let mins = ref [] in
  List.iter
    (fun op ->
      (match op with
      | `I v ->
          Sim.poke_bool sim "pq.ins" true;
          Sim.poke_bool sim "pq.ext" false;
          Sim.poke_int sim "pq.din" v
      | `E ->
          Sim.poke_bool sim "pq.ins" false;
          Sim.poke_bool sim "pq.ext" true);
      Sim.step sim;
      Sim.poke_bool sim "pq.ins" false;
      Sim.poke_bool sim "pq.ext" false;
      Sim.step sim;
      mins := Sim.peek_int sim "pq.minout" :: !mins)
    [ `I 9; `I 3; `I 11; `E; `E; `E ];
  Fmt.pr "  pqueue(8x4): insert 9,3,11 then extract x3 -> min trace %a \
          (runtime errors: %d)@."
    Fmt.(list ~sep:sp (option ~none:(any "?") int))
    (List.rev !mins)
    (List.length (Sim.runtime_errors sim));
  (* odd-even transposition sorter (Thompson-style, section 9's
     invitation): sort a vector and count the cycles *)
  let n = 8 in
  let d = compile (Corpus.sorter ~n ~w:4) in
  let sim = Sim.create d in
  Sim.poke_bool sim "srt.load" false;
  let values = [ 7; 3; 15; 0; 9; 9; 1; 4 ] in
  List.iteri
    (fun i v -> Sim.poke_int sim (Printf.sprintf "srt.din[%d]" (i + 1)) v)
    values;
  Sim.reset sim;
  Sim.poke_bool sim "srt.load" true;
  Sim.step sim;
  Sim.poke_bool sim "srt.load" false;
  Sim.step_n sim (n + 1);
  Fmt.pr "  sorter(8x4): %a -> %a in %d cycles (runtime errors: %d)@."
    Fmt.(list ~sep:sp int)
    values
    Fmt.(list ~sep:sp (option ~none:(any "?") int))
    (List.init n (fun i ->
         Sim.peek_int sim (Printf.sprintf "srt.dout[%d]" (i + 1))))
    (n + 1)
    (List.length (Sim.runtime_errors sim))

(* ------------------------------------------------------------------ *)
(* E13: the cross-cycle incremental engine                              *)
(* ------------------------------------------------------------------ *)

type e13_row = {
  r_design : string;
  r_cycles : int;
  r_firing_visits : int;
  r_firing_secs : float;
  r_incr_visits : int;
  r_incr_secs : float;
  r_quiescent_visits : int; (* total over 10 stimulus-free cycles *)
  r_agree : bool; (* snapshots identical after the workload *)
}

(* Low-activity workloads: a handful of input bits change per cycle
   while the bulk of the design is quiet — the regime the cross-cycle
   incremental engine exists for.  Each workload is
   (name, source, warm-up pokes, per-cycle stimulus). *)
let e13_workloads =
  [
    ( "routing(128)/1-header",
      Corpus.routing_network 128,
      (fun sim ->
        for i = 0 to 127 do
          Sim.poke_int sim (Printf.sprintf "net.input[%d]" i) i
        done),
      fun sim c -> Sim.poke_int sim "net.input[0]" (c land 1) );
    ( "ram(256x16)/1-bit-write",
      Corpus.ram ~abits:8 ~wbits:16,
      (fun sim ->
        Sim.poke_int sim "m.addr" 42;
        Sim.poke_int sim "m.data" 0;
        Sim.poke_bool sim "m.we" true),
      fun sim c -> Sim.poke_int sim "m.data" (c land 1) );
    ( "adder(64)/cin-toggle",
      Corpus.adder_n 64,
      (fun sim ->
        Sim.poke_int_lsb sim "adder.a" 0;
        Sim.poke_int_lsb sim "adder.b" 0;
        Sim.poke_bool sim "adder.cin" false),
      fun sim c -> Sim.poke_bool sim "adder.cin" (c land 1 = 1) );
  ]

let e13_write_json rows path =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"experiments\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"design\": %S, \"cycles\": %d,\n\
           \     \"firing\": {\"node_visits\": %d, \"seconds\": %.6f},\n\
           \     \"incremental\": {\"node_visits\": %d, \"seconds\": %.6f},\n\
           \     \"visit_ratio\": %.2f, \"quiescent_visits_per_cycle\": %d,\n\
           \     \"snapshots_agree\": %b}"
           r.r_design r.r_cycles r.r_firing_visits r.r_firing_secs
           r.r_incr_visits r.r_incr_secs
           (float_of_int r.r_firing_visits
           /. float_of_int (max 1 r.r_incr_visits))
           (r.r_quiescent_visits / 10)
           r.r_agree))
    rows;
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "wrote %s@." path

let e13_incremental ~cycles () =
  section "E13"
    "cross-cycle incremental engine: node visits and wall clock vs \
     per-cycle firing (low-activity workloads)";
  let bench (name, src, warm, stim) =
    let d = compile src in
    let run engine =
      let sim = Sim.create ~engine d in
      warm sim;
      Sim.step sim;
      (* cold-start cycle excluded from the counts *)
      let v0 = Sim.node_visits sim in
      let t0 = Sys.time () in
      for c = 1 to cycles do
        stim sim c;
        Sim.step sim
      done;
      (Sim.node_visits sim - v0, Sys.time () -. t0, sim)
    in
    let fv, fs, fsim = run Sim.Firing in
    let iv, is_, isim = run Sim.Incremental in
    let agree = Sim.snapshot fsim = Sim.snapshot isim in
    (* a fully quiescent tail: the incremental engine must do no work *)
    let q0 = Sim.node_visits isim in
    Sim.step_n isim 10;
    let qv = Sim.node_visits isim - q0 in
    { r_design = name; r_cycles = cycles; r_firing_visits = fv;
      r_firing_secs = fs; r_incr_visits = iv; r_incr_secs = is_;
      r_quiescent_visits = qv; r_agree = agree }
  in
  let rows = List.map bench e13_workloads in
  Fmt.pr "  %-24s %6s %10s %9s %10s %9s %7s %6s %6s@." "workload" "cycles"
    "fire-vis" "fire-s" "incr-vis" "incr-s" "ratio" "quiet" "agree";
  List.iter
    (fun r ->
      Fmt.pr "  %-24s %6d %10d %9.4f %10d %9.4f %6.1fx %6d %6s@." r.r_design
        r.r_cycles r.r_firing_visits r.r_firing_secs r.r_incr_visits
        r.r_incr_secs
        (float_of_int r.r_firing_visits
        /. float_of_int (max 1 r.r_incr_visits))
        (r.r_quiescent_visits / 10)
        (if r.r_agree then "yes" else "NO"))
    rows;
  Fmt.pr "(\"quiet\" = incremental node visits per fully quiescent cycle — \
          must be 0)@.";
  e13_write_json rows "BENCH_sim.json"

(* ------------------------------------------------------------------ *)
(* E14: modular summary analysis vs elaborate-then-lint                 *)
(* ------------------------------------------------------------------ *)

type e14_row = {
  m_design : string;
  m_nets : int; (* elaborated design size, for scale *)
  m_mod_secs : float;
  m_summaries : int; (* (type, signature) summaries the modular pass built *)
  m_elab_secs : float;
  m_proven : bool; (* top type proved conflict-safe AND cycle-free *)
}

(* The modular pass is O(types × signatures): the recursive families
   need log N summaries while elaboration builds Θ(N log N) hardware,
   so the modular column should stay near-flat as N grows. *)
let e14_families ~smoke =
  [
    ("routing", Corpus.routing_network, "routingnetwork",
     if smoke then [ 4; 16 ] else [ 4; 8; 16; 32; 64; 128 ]);
    ("htree", Corpus.htree, "htree",
     if smoke then [ 16 ] else [ 4; 16; 64; 256 ]);
  ]

let e14_bench family mk ty n =
  let src = mk n in
  let prog =
    match Parser.program src with
    | Some p, _ -> p
    | None, _ ->
        Fmt.epr "E14: %s(%d) does not parse@." family n;
        exit 1
  in
  (* modular: parse + summaries, no cache, no elaboration; averaged over
     a few repetitions because a single run is near the clock tick *)
  let reps = 5 in
  let t0 = Sys.time () in
  let res = ref None in
  for _ = 1 to reps do
    res := Some (Summary.analyze prog)
  done;
  let mod_secs = (Sys.time () -. t0) /. float_of_int reps in
  let r = Option.get !res in
  (* the elaborated pipeline it replaces: elaborate + check + lint *)
  let t1 = Sys.time () in
  let d = compile src in
  let (_ : Lint.report) = Lint.run d in
  let elab_secs = Sys.time () -. t1 in
  let proven =
    List.mem ty r.Summary.proven_conflict_safe
    && List.mem ty r.Summary.proven_cycle_free
  in
  {
    m_design = Printf.sprintf "%s(%d)" family n;
    m_nets = Netlist.net_count d.Elaborate.netlist;
    m_mod_secs = mod_secs;
    m_summaries = r.Summary.summaries_computed;
    m_elab_secs = elab_secs;
    m_proven = proven;
  }

let e14_write_json rows path =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"experiments\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"design\": %S, \"nets\": %d,\n\
           \     \"modular\": {\"summaries\": %d, \"seconds\": %.6f},\n\
           \     \"elaborate_lint\": {\"seconds\": %.6f},\n\
           \     \"speedup\": %.2f, \"proven\": %b}"
           r.m_design r.m_nets r.m_summaries r.m_mod_secs r.m_elab_secs
           (r.m_elab_secs /. Float.max 1e-9 r.m_mod_secs)
           r.m_proven))
    rows;
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "wrote %s@." path

let e14_modular ?(smoke = false) () =
  section "E14"
    "modular summary analysis vs elaborate-then-lint on the recursive \
     families (seconds; modular should stay near-flat in N)";
  let rows =
    List.concat_map
      (fun (family, mk, ty, sizes) ->
        List.map (e14_bench family mk ty) sizes)
      (e14_families ~smoke)
  in
  Fmt.pr "  %-14s %8s %10s %10s %10s %8s %7s@." "design" "nets" "summaries"
    "modular-s" "elab-s" "speedup" "proven";
  List.iter
    (fun r ->
      Fmt.pr "  %-14s %8d %10d %10.4f %10.4f %7.1fx %7s@." r.m_design r.m_nets
        r.m_summaries r.m_mod_secs r.m_elab_secs
        (r.m_elab_secs /. Float.max 1e-9 r.m_mod_secs)
        (if r.m_proven then "yes" else "NO"))
    rows;
  e14_write_json rows "BENCH_modular.json"

(* ------------------------------------------------------------------ *)
(* E15: the domain-parallel engine                                      *)
(* ------------------------------------------------------------------ *)

type e15_par_row = {
  p_jobs : int;
  p_visits : int;
  p_secs : float;
  p_barriers : int;
  p_chunked : int;
  p_max_fanout : int;
  p_agree : bool; (* final snapshot bit-identical to incremental *)
}

type e15_row = {
  p_design : string;
  p_cycles : int;
  p_incr_visits : int;
  p_incr_secs : float;
  p_runs : e15_par_row list; (* one per domain count *)
}

(* High-activity workloads: most of the design switches every cycle —
   the regime where chunking a wide dirty level across domains pays.
   Each workload is (name, source, warm-up pokes, per-cycle stimulus). *)
let e15_workloads =
  [
    ( "routing(128)/all-headers",
      Corpus.routing_network 128,
      (fun sim ->
        for i = 0 to 127 do
          Sim.poke_int sim (Printf.sprintf "net.input[%d]" i) i
        done),
      fun sim c ->
        for i = 0 to 127 do
          Sim.poke_int sim
            (Printf.sprintf "net.input[%d]" i)
            ((i + c) land 1023)
        done );
    ( "htree(256)/root-toggle",
      Corpus.htree 256,
      (fun sim -> Sim.poke_bool sim "a.in" false),
      fun sim c -> Sim.poke_bool sim "a.in" (c land 1 = 1) );
    ( "patternmatch(9)/stream",
      Corpus.patternmatch 9,
      (fun sim ->
        List.iter
          (fun p -> Sim.poke_bool sim ("match." ^ p) false)
          [ "pattern"; "string"; "endofpattern"; "wild"; "resultin" ]),
      fun sim c ->
        Sim.poke_bool sim "match.pattern" (c land 1 = 1);
        Sim.poke_bool sim "match.string" (c land 2 = 2);
        Sim.poke_bool sim "match.endofpattern" (c mod 9 = 0);
        Sim.poke_bool sim "match.wild" (c land 4 = 4);
        Sim.poke_bool sim "match.resultin" (c land 1 = 0) );
  ]

let e15_jobs = [ 1; 2; 4; 8 ]

let e15_write_json rows path =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"experiments\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"design\": %S, \"cycles\": %d,\n\
           \     \"incremental\": {\"node_visits\": %d, \"seconds\": %.6f},\n\
           \     \"parallel\": [\n"
           r.p_design r.p_cycles r.p_incr_visits r.p_incr_secs);
      List.iteri
        (fun j p ->
          if j > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf
            (Printf.sprintf
               "       {\"jobs\": %d, \"node_visits\": %d, \"seconds\": \
                %.6f,\n\
               \        \"speedup\": %.2f, \"barriers\": %d, \
                \"chunked_levels\": %d,\n\
               \        \"max_fanout\": %d, \"snapshots_agree\": %b}"
               p.p_jobs p.p_visits p.p_secs
               (r.p_incr_secs /. Float.max 1e-9 p.p_secs)
               p.p_barriers p.p_chunked p.p_max_fanout p.p_agree))
        r.p_runs;
      Buffer.add_string buf "\n     ]}")
    rows;
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "wrote %s@." path

let e15_parallel ~cycles () =
  section "E15"
    "domain-parallel engine: wall clock and work breakdown vs incremental \
     at 1/2/4/8 domains (high-activity workloads)";
  let bench (name, src, warm, stim) =
    let run_with create =
      let sim = create () in
      warm sim;
      Sim.step sim;
      (* cold-start cycle excluded from the counts *)
      let v0 = Sim.node_visits sim in
      let t0 = Unix.gettimeofday () in
      for c = 1 to cycles do
        stim sim c;
        Sim.step sim
      done;
      (Sim.node_visits sim - v0, Unix.gettimeofday () -. t0, sim)
    in
    let d = compile src in
    let iv, is_, isim = run_with (fun () -> Sim.create ~engine:Sim.Incremental d) in
    let reference = Sim.snapshot isim in
    let runs =
      List.map
        (fun jobs ->
          let pv, ps, psim =
            run_with (fun () -> Sim.create ~engine:Sim.Parallel ~jobs d)
          in
          let stats =
            match Sim.parallel_stats psim with
            | Some s -> s
            | None -> assert false
          in
          { p_jobs = jobs; p_visits = pv; p_secs = ps;
            p_barriers = stats.Sim.par_barriers;
            p_chunked = stats.Sim.par_chunked_levels;
            p_max_fanout = stats.Sim.par_max_fanout;
            p_agree = Sim.snapshot psim = reference })
        e15_jobs
    in
    { p_design = name; p_cycles = cycles; p_incr_visits = iv;
      p_incr_secs = is_; p_runs = runs }
  in
  let rows = List.map bench e15_workloads in
  Fmt.pr "  %-26s %5s %10s %9s %9s %8s %8s %6s@." "workload" "jobs"
    "visits" "secs" "speedup" "barrier" "fanout" "agree";
  List.iter
    (fun r ->
      Fmt.pr "  %-26s %5s %10d %9.4f %9s %8s %8s %6s@." r.p_design "incr"
        r.p_incr_visits r.p_incr_secs "1.0x" "-" "-" "-";
      List.iter
        (fun p ->
          Fmt.pr "  %-26s %5d %10d %9.4f %8.1fx %8d %8d %6s@." "" p.p_jobs
            p.p_visits p.p_secs
            (r.p_incr_secs /. Float.max 1e-9 p.p_secs)
            p.p_barriers p.p_max_fanout
            (if p.p_agree then "yes" else "NO"))
        r.p_runs)
    rows;
  Fmt.pr "(visit counts are jobs-invariant; wall-clock speedup needs \
          multiple cores)@.";
  e15_write_json rows "BENCH_par.json"

(* ------------------------------------------------------------------ *)
(* E16: the proof-carrying reduction (zeusc opt)                        *)
(* ------------------------------------------------------------------ *)

type e16_row = {
  o_design : string;
  o_cycles : int;
  o_stats : Reduce.stats;
  o_plain_visits : int;
  o_plain_secs : float;
  o_opt_visits : int;
  o_opt_secs : float;
  o_agree : bool; (* observable final snapshot identical through class maps *)
}

let e16_write_json rows path =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"experiments\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      let s = r.o_stats in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"design\": %S, \"cycles\": %d,\n\
           \     \"reduction\": {\"gates_before\": %d, \"gates_after\": %d, \
            \"drivers_before\": %d, \"drivers_after\": %d,\n\
           \                   \"consts_folded\": %d, \"copies_merged\": %d, \
            \"nets_eliminated\": %d},\n\
           \     \"plain\": {\"node_visits\": %d, \"seconds\": %.6f},\n\
           \     \"optimized\": {\"node_visits\": %d, \"seconds\": %.6f, \
            \"speedup\": %.2f, \"snapshots_agree\": %b}}"
           r.o_design r.o_cycles s.Reduce.gates_before s.Reduce.gates_after
           s.Reduce.drivers_before s.Reduce.drivers_after
           s.Reduce.consts_folded s.Reduce.copies_merged
           s.Reduce.nets_eliminated r.o_plain_visits r.o_plain_secs
           r.o_opt_visits r.o_opt_secs
           (r.o_plain_secs /. Float.max 1e-9 r.o_opt_secs)
           r.o_agree))
    rows;
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "wrote %s@." path

let e16_opt ~cycles () =
  section "E16"
    "proof-carrying reduction: optimized vs plain simulation (incremental \
     engine, high-activity workloads)";
  let bench (name, src, warm, stim) =
    let d = compile src in
    let r = Reduce.run d in
    let run design =
      let sim = Sim.create ~engine:Sim.Incremental design in
      warm sim;
      Sim.step sim;
      (* cold-start cycle excluded from the counts *)
      let v0 = Sim.node_visits sim in
      let t0 = Unix.gettimeofday () in
      for c = 1 to cycles do
        stim sim c;
        Sim.step sim
      done;
      (Sim.node_visits sim - v0, Unix.gettimeofday () -. t0, sim)
    in
    let pv, ps, psim = run d in
    let ov, os_, osim = run r.Reduce.design in
    (* observable equality through each design's class map: the
       reduction merges copy classes, so only per-net root slots are
       comparable (same check as oracle row O6, on the final state) *)
    let g1 = Graph.build d and g2 = Graph.build r.Reduce.design in
    let s1 = Sim.snapshot psim and s2 = Sim.snapshot osim in
    let ai = r.Reduce.ai in
    let agree = ref true in
    Array.iter
      (fun root ->
        if ai.Absint.observable.(ai.Absint.canon.(root)) then begin
          let slot2 = g2.Graph.rep.(g2.Graph.canon.(root)) in
          if s1.(root) <> s2.(slot2) then agree := false
        end)
      g1.Graph.rep;
    {
      o_design = name;
      o_cycles = cycles;
      o_stats = r.Reduce.stats;
      o_plain_visits = pv;
      o_plain_secs = ps;
      o_opt_visits = ov;
      o_opt_secs = os_;
      o_agree = !agree;
    }
  in
  let rows = List.map bench e15_workloads in
  Fmt.pr "  %-26s %8s %8s %8s %8s %10s %9s %8s %6s@." "workload" "gates"
    "drivers" "folded" "merged" "visits" "secs" "speedup" "agree";
  List.iter
    (fun r ->
      let s = r.o_stats in
      Fmt.pr "  %-26s %8s %8s %8s %8s %10d %9.4f %8s %6s@." r.o_design
        (Printf.sprintf "%d" s.Reduce.gates_before)
        (Printf.sprintf "%d" s.Reduce.drivers_before)
        "-" "-" r.o_plain_visits r.o_plain_secs "1.0x" "-";
      Fmt.pr "  %-26s %8s %8s %8s %8s %10d %9.4f %7.1fx %6s@." "  (optimized)"
        (Printf.sprintf "%d" s.Reduce.gates_after)
        (Printf.sprintf "%d" s.Reduce.drivers_after)
        (Printf.sprintf "%d" s.Reduce.consts_folded)
        (Printf.sprintf "%d" s.Reduce.copies_merged)
        r.o_opt_visits r.o_opt_secs
        (r.o_plain_secs /. Float.max 1e-9 r.o_opt_secs)
        (if r.o_agree then "yes" else "NO"))
    rows;
  e16_write_json rows "BENCH_opt.json"

(* ------------------------------------------------------------------ *)
(* E17: the compiled bytecode engine                                    *)
(* ------------------------------------------------------------------ *)

type e17_row = {
  b_design : string;
  b_cycles : int;
  b_incr_visits : int;
  b_incr_secs : float;
  b_visits : int;
  b_secs : float;
  b_prog_ops : int;
  b_scalar_ops : int;
  b_vector_ops : int;
  b_vector_lanes : int;
  b_compile_secs : float;
  b_agree : bool;
}

(* The e15 high-activity workloads, with the poke paths resolved once
   per design instead of sprintf+resolve on every cycle — the stimulus
   must not dominate the measurement when the engine under test spends
   well under a millisecond per cycle. *)
let e17_workloads =
  [
    ( "routing(128)/all-headers",
      Corpus.routing_network 128,
      fun d ->
        let nets =
          Array.init 128 (fun i ->
              match
                Elaborate.resolve_path d (Printf.sprintf "net.input[%d]" i)
              with
              | Ok nets -> nets
              | Error msg -> failwith msg)
        in
        let headers =
          Array.init 1024 (fun v -> Cval.sctree_leaves (Cval.bin v 10))
        in
        ( (fun sim ->
            for i = 0 to 127 do
              Sim.poke_nets sim nets.(i) headers.(i)
            done),
          fun sim c ->
            for i = 0 to 127 do
              Sim.poke_nets sim nets.(i) headers.((i + c) land 1023)
            done ) );
    ( "htree(256)/root-toggle",
      Corpus.htree 256,
      fun _ ->
        ( (fun sim -> Sim.poke_bool sim "a.in" false),
          fun sim c -> Sim.poke_bool sim "a.in" (c land 1 = 1) ) );
    ( "patternmatch(9)/stream",
      Corpus.patternmatch 9,
      fun _ ->
        ( (fun sim ->
            List.iter
              (fun p -> Sim.poke_bool sim ("match." ^ p) false)
              [ "pattern"; "string"; "endofpattern"; "wild"; "resultin" ]),
          fun sim c ->
            Sim.poke_bool sim "match.pattern" (c land 1 = 1);
            Sim.poke_bool sim "match.string" (c land 2 = 2);
            Sim.poke_bool sim "match.endofpattern" (c mod 9 = 0);
            Sim.poke_bool sim "match.wild" (c land 4 = 4);
            Sim.poke_bool sim "match.resultin" (c land 1 = 0) ) );
  ]

let e17_write_json rows path =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"experiments\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"design\": %S, \"cycles\": %d,\n\
           \     \"incremental\": {\"node_visits\": %d, \"seconds\": %.6f},\n\
           \     \"compiled\": {\"node_visits\": %d, \"seconds\": %.6f, \
            \"speedup\": %.2f,\n\
           \       \"prog_ops\": %d, \"scalar_ops\": %d, \"vector_ops\": \
            %d, \"vector_lanes\": %d,\n\
           \       \"compile_seconds\": %.6f, \"snapshots_agree\": %b}}"
           r.b_design r.b_cycles r.b_incr_visits r.b_incr_secs r.b_visits
           r.b_secs
           (r.b_incr_secs /. Float.max 1e-9 r.b_secs)
           r.b_prog_ops r.b_scalar_ops r.b_vector_ops r.b_vector_lanes
           r.b_compile_secs r.b_agree))
    rows;
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "wrote %s@." path

let e17_compiled ~cycles () =
  section "E17"
    "compiled bytecode engine: wall clock and program shape vs incremental \
     (high-activity workloads, poke paths preresolved)";
  let bench (name, src, prepare) =
    let d = compile src in
    let warm, stim = prepare d in
    let run engine =
      let sim = Sim.create ~engine d in
      warm sim;
      Sim.step sim;
      (* cold-start cycle (and the one-time compile) excluded *)
      let v0 = Sim.node_visits sim in
      let t0 = Unix.gettimeofday () in
      for c = 1 to cycles do
        stim sim c;
        Sim.step sim
      done;
      (Sim.node_visits sim - v0, Unix.gettimeofday () -. t0, sim)
    in
    let iv, is_, isim = run Sim.Incremental in
    let cv, cs, csim = run Sim.Compiled in
    let stats =
      match Sim.compiled_stats csim with Some s -> s | None -> assert false
    in
    {
      b_design = name;
      b_cycles = cycles;
      b_incr_visits = iv;
      b_incr_secs = is_;
      b_visits = cv;
      b_secs = cs;
      b_prog_ops = stats.Sim.c_ops;
      b_scalar_ops = stats.Sim.c_scalar_ops;
      b_vector_ops = stats.Sim.c_vector_ops;
      b_vector_lanes = stats.Sim.c_vector_lanes;
      b_compile_secs = stats.Sim.c_compile_secs;
      b_agree = Sim.snapshot csim = Sim.snapshot isim;
    }
  in
  let rows = List.map bench e17_workloads in
  Fmt.pr "  %-26s %10s %10s %9s %8s %8s %8s %6s@." "workload" "engine"
    "visits" "secs" "speedup" "progops" "vlanes" "agree";
  List.iter
    (fun r ->
      Fmt.pr "  %-26s %10s %10d %9.4f %8s %8s %8s %6s@." r.b_design "incr"
        r.b_incr_visits r.b_incr_secs "1.0x" "-" "-" "-";
      Fmt.pr "  %-26s %10s %10d %9.4f %7.1fx %8d %8d %6s@." "" "compiled"
        r.b_visits r.b_secs
        (r.b_incr_secs /. Float.max 1e-9 r.b_secs)
        r.b_prog_ops r.b_vector_lanes
        (if r.b_agree then "yes" else "NO"))
    rows;
  Fmt.pr "(program shape is design-deterministic; wall-clock speedup is \
          machine-dependent)@.";
  e17_write_json rows "BENCH_compiled.json"

(* ------------------------------------------------------------------ *)
(* E18: the batch engine (whole-run sharding + lane packing)            *)
(* ------------------------------------------------------------------ *)

type e18_row = {
  t_design : string;
  t_runs : int;
  t_cycles : int; (* per run *)
  t_jobs : int;
  t_lanes : int;
  t_serial_secs : float; (* fresh incremental handle per run *)
  t_cold_secs : float; (* template create (incl. compile) + run_batch *)
  t_warm_secs : float; (* run_batch on the warm template *)
  t_groups : int; (* lane groups executed *)
  t_lane_runs : int;
  t_fallback_runs : int; (* runs that took the serial fallback *)
  t_agree : bool; (* every final snapshot matches its serial run *)
}

(* The E15 corpus restated as independent batch runs: run [r] drives
   the same nets with a per-run offset, so no two runs share a stimulus
   (and each run gets its own RANDOM seed). *)
let e18_workloads =
  [
    ( "routing(128)/all-headers",
      Corpus.routing_network 128,
      fun ~runs ~cycles ->
        let headers =
          Array.init 1024 (fun v -> Cval.sctree_leaves (Cval.bin v 10))
        in
        let paths =
          Array.init 128 (fun i -> Printf.sprintf "net.input[%d]" i)
        in
        Array.init runs (fun r ->
            Array.init cycles (fun c ->
                Array.to_list
                  (Array.mapi
                     (fun i p -> (p, headers.((i + c + (7 * r)) land 1023)))
                     paths))) );
    ( "htree(256)/root-toggle",
      Corpus.htree 256,
      fun ~runs ~cycles ->
        Array.init runs (fun r ->
            Array.init cycles (fun c ->
                [
                  ( "a.in",
                    [ (if (c + r) land 1 = 1 then Logic.One else Logic.Zero) ]
                  );
                ])) );
    ( "patternmatch(9)/stream",
      Corpus.patternmatch 9,
      fun ~runs ~cycles ->
        let b v = [ (if v then Logic.One else Logic.Zero) ] in
        Array.init runs (fun r ->
            Array.init cycles (fun c ->
                let c = c + r in
                [
                  ("match.pattern", b (c land 1 = 1));
                  ("match.string", b (c land 2 = 2));
                  ("match.endofpattern", b (c mod 9 = 0));
                  ("match.wild", b (c land 4 = 4));
                  ("match.resultin", b (c land 1 = 0));
                ])) );
  ]

let e18_write_json rows path =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"experiments\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      let rps secs = float_of_int r.t_runs /. Float.max 1e-9 secs in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"design\": %S, \"runs\": %d, \"cycles\": %d, \"jobs\": \
            %d, \"lanes\": %d,\n\
           \     \"lane_groups\": %d, \"lane_runs\": %d, \
            \"serial_fallback_runs\": %d,\n\
           \     \"serial\": {\"seconds\": %.6f, \"serial_runs_per_sec\": \
            %.1f},\n\
           \     \"batch\": {\"cold_seconds\": %.6f, \
            \"cold_runs_per_sec\": %.1f,\n\
           \       \"warm_seconds\": %.6f, \"warm_runs_per_sec\": %.1f,\n\
           \       \"speedup_cold\": %.2f, \"speedup_warm\": %.2f, \
            \"snapshots_agree\": %b}}"
           r.t_design r.t_runs r.t_cycles r.t_jobs r.t_lanes r.t_groups
           r.t_lane_runs r.t_fallback_runs r.t_serial_secs
           (rps r.t_serial_secs) r.t_cold_secs (rps r.t_cold_secs)
           r.t_warm_secs (rps r.t_warm_secs)
           (r.t_serial_secs /. Float.max 1e-9 r.t_cold_secs)
           (r.t_serial_secs /. Float.max 1e-9 r.t_warm_secs)
           r.t_agree))
    rows;
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "wrote %s@." path

let e18_batch ~runs:nruns ~cycles ~jobs () =
  section "E18"
    (Printf.sprintf
       "batch engine: whole-run sharding + lane packing, runs/second vs a \
        fresh serial incremental handle per run (jobs=%d, lanes=8)"
       jobs);
  let lanes = 8 in
  let bench (name, src, mk) =
    let d = compile src in
    let stims = mk ~runs:nruns ~cycles in
    let batch_runs =
      Array.to_list
        (Array.mapi
           (fun r stim ->
             {
               Sim.br_stim = stim;
               br_cycles = cycles;
               br_seed = Some r;
               br_watch = [];
             })
           stims)
    in
    (* serial baseline: one fresh incremental handle per run; poke
       paths pre-resolved once per design so the stimulus does not
       dominate the measurement (as in E17) *)
    let resolved = Hashtbl.create 64 in
    Array.iter
      (Array.iter
         (List.iter (fun (p, _) ->
              if not (Hashtbl.mem resolved p) then
                match Elaborate.resolve_path d p with
                | Ok nets -> Hashtbl.add resolved p nets
                | Error m -> failwith m)))
      stims;
    let serial_snaps = Array.make nruns [||] in
    let t0 = Unix.gettimeofday () in
    Array.iteri
      (fun r stim ->
        let sim = Sim.create ~engine:Sim.Incremental ~seed:r d in
        Array.iter
          (fun pokes ->
            List.iter
              (fun (p, bits) ->
                Sim.poke_nets sim (Hashtbl.find resolved p) bits)
              pokes;
            Sim.step sim)
          stim;
        serial_snaps.(r) <- Sim.snapshot sim)
      stims;
    let serial_secs = Unix.gettimeofday () -. t0 in
    (* cold: template creation (graph, schedule, one-time bytecode
       compile) plus the batch itself *)
    let t0 = Unix.gettimeofday () in
    let tmpl = Sim.create ~engine:Sim.Compiled d in
    let cold_results, st = Sim.run_batch ~jobs ~lanes tmpl batch_runs in
    let cold_secs = Unix.gettimeofday () -. t0 in
    (* warm: the template (and its compiled program) is reused *)
    let t0 = Unix.gettimeofday () in
    let warm_results, _ = Sim.run_batch ~jobs ~lanes tmpl batch_runs in
    let warm_secs = Unix.gettimeofday () -. t0 in
    let agree = ref true in
    let check_snaps results =
      List.iteri
        (fun r (res : Sim.batch_result) ->
          if res.Sim.bres_snapshot <> serial_snaps.(r) then agree := false)
        results
    in
    check_snaps cold_results;
    check_snaps warm_results;
    {
      t_design = name;
      t_runs = nruns;
      t_cycles = cycles;
      t_jobs = jobs;
      t_lanes = lanes;
      t_serial_secs = serial_secs;
      t_cold_secs = cold_secs;
      t_warm_secs = warm_secs;
      t_groups = st.Sim.bs_lane_groups;
      t_lane_runs = st.Sim.bs_lane_runs;
      t_fallback_runs = st.Sim.bs_serial_runs;
      t_agree = !agree;
    }
  in
  let rows = List.map bench e18_workloads in
  (* the acceptance metric: runs/second over the whole corpus — one
     slow-to-simulate design must not hide behind two fast ones (or
     vice versa), so the totals weight each run by its true cost *)
  let total =
    List.fold_left
      (fun acc r ->
        {
          acc with
          t_runs = acc.t_runs + r.t_runs;
          t_serial_secs = acc.t_serial_secs +. r.t_serial_secs;
          t_cold_secs = acc.t_cold_secs +. r.t_cold_secs;
          t_warm_secs = acc.t_warm_secs +. r.t_warm_secs;
          t_groups = acc.t_groups + r.t_groups;
          t_lane_runs = acc.t_lane_runs + r.t_lane_runs;
          t_fallback_runs = acc.t_fallback_runs + r.t_fallback_runs;
          t_agree = acc.t_agree && r.t_agree;
        })
      {
        t_design = "corpus-total";
        t_runs = 0;
        t_cycles = cycles;
        t_jobs = jobs;
        t_lanes = lanes;
        t_serial_secs = 0.;
        t_cold_secs = 0.;
        t_warm_secs = 0.;
        t_groups = 0;
        t_lane_runs = 0;
        t_fallback_runs = 0;
        t_agree = true;
      }
      rows
  in
  let rows = rows @ [ total ] in
  Fmt.pr "  %-26s %6s %7s %10s %9s %8s %7s %6s@." "workload" "mode" "runs"
    "runs/sec" "secs" "speedup" "groups" "agree";
  List.iter
    (fun r ->
      let rps secs = float_of_int r.t_runs /. Float.max 1e-9 secs in
      Fmt.pr "  %-26s %6s %7d %10.1f %9.4f %8s %7s %6s@." r.t_design "serial"
        r.t_runs (rps r.t_serial_secs) r.t_serial_secs "1.0x" "-" "-";
      Fmt.pr "  %-26s %6s %7d %10.1f %9.4f %7.1fx %7d %6s@." "" "cold"
        r.t_runs (rps r.t_cold_secs) r.t_cold_secs
        (r.t_serial_secs /. Float.max 1e-9 r.t_cold_secs)
        r.t_groups
        (if r.t_agree then "yes" else "NO");
      Fmt.pr "  %-26s %6s %7d %10.1f %9.4f %7.1fx %7d %6s@." "" "warm"
        r.t_runs (rps r.t_warm_secs) r.t_warm_secs
        (r.t_serial_secs /. Float.max 1e-9 r.t_warm_secs)
        r.t_groups
        (if r.t_agree then "yes" else "NO"))
    rows;
  Fmt.pr "(counters are deterministic in (design, runs, jobs, lanes); \
          runs/second is machine-dependent)@.";
  e18_write_json rows "BENCH_batch.json"

(* ------------------------------------------------------------------ *)
(* E19: the bounded sequential prover + conflict-check discharge        *)
(* ------------------------------------------------------------------ *)

type e19_row = {
  v_design : string;
  v_cycles : int;
  v_regs : int;
  v_nrc_nets : int; (* needs-runtime-check before the prover *)
  v_upgraded_nets : int; (* ... upgraded to safe-sequential *)
  v_splits : int;
  v_prove_secs : float;
  v_check_ops : int; (* compiled engine, no discharge *)
  v_plain_secs : float;
  v_disch_check_ops : int; (* ... with --discharge *)
  v_discharged_ops : int;
  v_disch_secs : float;
  v_agree : bool; (* final snapshots identical with and without *)
}

(* Register-heavy machines whose driver exclusivity is sequential —
   the regime the prover targets — plus one registerless E15 workload
   as the no-op control (proof cost on a purely combinational design).
   Each workload is (name, source, warm-up pokes, per-cycle stimulus);
   the stimulus pokes only defined values, which is the environment
   assumption discharge lives under. *)
let e19_workloads =
  [
    ( "pqueue(8x4)/ins-ext",
      Corpus.priority_queue ~slots:8 ~width:4,
      (fun sim ->
        Sim.poke_bool sim "pq.ins" false;
        Sim.poke_bool sim "pq.ext" false;
        Sim.poke_int sim "pq.din" 0),
      fun sim c ->
        (* alternate insert / idle / extract / idle *)
        Sim.poke_bool sim "pq.ins" (c land 3 = 0);
        Sim.poke_bool sim "pq.ext" (c land 3 = 2);
        Sim.poke_int sim "pq.din" (c land 15) );
    ( "sorter(8x4)/reload",
      Corpus.sorter ~n:8 ~w:4,
      (fun sim ->
        Sim.poke_bool sim "srt.load" false;
        for i = 1 to 8 do
          Sim.poke_int sim (Printf.sprintf "srt.din[%d]" i) 0
        done),
      fun sim c ->
        (* reload a fresh vector every 10 cycles, sort in between *)
        Sim.poke_bool sim "srt.load" (c mod 10 = 0);
        for i = 1 to 8 do
          Sim.poke_int sim
            (Printf.sprintf "srt.din[%d]" i)
            ((c + (3 * i)) land 15)
        done );
    ( "htree(256)/root-toggle",
      Corpus.htree 256,
      (fun sim -> Sim.poke_bool sim "a.in" false),
      fun sim c -> Sim.poke_bool sim "a.in" (c land 1 = 1) );
  ]

let e19_write_json rows path =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"experiments\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"design\": %S, \"cycles\": %d,\n\
           \     \"prove\": {\"registers\": %d, \"nrc_nets\": %d, \
            \"upgraded_nets\": %d, \"splits\": %d, \"seconds\": %.6f},\n\
           \     \"plain\": {\"check_ops\": %d, \"seconds\": %.6f},\n\
           \     \"discharged\": {\"check_ops\": %d, \"discharged_ops\": \
            %d, \"seconds\": %.6f,\n\
           \       \"speedup\": %.2f, \"snapshots_agree\": %b}}"
           r.v_design r.v_cycles r.v_regs r.v_nrc_nets r.v_upgraded_nets
           r.v_splits r.v_prove_secs r.v_check_ops r.v_plain_secs
           r.v_disch_check_ops r.v_discharged_ops r.v_disch_secs
           (r.v_plain_secs /. Float.max 1e-9 r.v_disch_secs)
           r.v_agree))
    rows;
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "wrote %s@." path

let e19_prove ~cycles () =
  section "E19"
    "bounded sequential prover: proof cost, upgraded nets, and the \
     compiled engine with conflict checks discharged";
  let bench (name, src, warm, stim) =
    let d = compile src in
    let lint = Lint.run d in
    let nrc =
      Array.fold_left
        (fun acc (v : Lint.net_verdict) ->
          match v.Lint.v_class with
          | Lint.Needs_runtime_check -> acc + 1
          | _ -> acc)
        0
        (Array.of_list lint.Lint.verdicts)
    in
    let t0 = Unix.gettimeofday () in
    let sp = Seqprove.run ~lint d in
    let prove_secs = Unix.gettimeofday () -. t0 in
    let disch = Seqprove.discharged d sp in
    let run ?discharged () =
      let sim = Sim.create ~engine:Sim.Compiled ?discharged d in
      warm sim;
      Sim.step sim;
      (* cold-start cycle (and the one-time compile) excluded *)
      let t0 = Unix.gettimeofday () in
      for c = 1 to cycles do
        stim sim c;
        Sim.step sim
      done;
      let secs = Unix.gettimeofday () -. t0 in
      let stats =
        match Sim.compiled_stats sim with Some s -> s | None -> assert false
      in
      (secs, stats, sim)
    in
    let ps, pstats, psim = run () in
    let ds, dstats, dsim = run ~discharged:(fun c -> disch.(c)) () in
    {
      v_design = name;
      v_cycles = cycles;
      v_regs = List.length sp.Seqprove.sp_regs;
      v_nrc_nets = nrc;
      v_upgraded_nets = List.length sp.Seqprove.sp_upgraded;
      v_splits = sp.Seqprove.sp_splits;
      v_prove_secs = prove_secs;
      v_check_ops = pstats.Sim.c_check_ops;
      v_plain_secs = ps;
      v_disch_check_ops = dstats.Sim.c_check_ops;
      v_discharged_ops = dstats.Sim.c_discharged_ops;
      v_disch_secs = ds;
      v_agree = Sim.snapshot dsim = Sim.snapshot psim;
    }
  in
  let rows = List.map bench e19_workloads in
  Fmt.pr "  %-26s %5s %5s %8s %8s %9s %8s %8s %9s %6s@." "workload" "regs"
    "nrc" "upgrade" "splits" "prove-s" "chkops" "dischrg" "secs" "agree";
  List.iter
    (fun r ->
      Fmt.pr "  %-26s %5d %5d %8d %8d %9.4f %8d %8s %9.4f %6s@." r.v_design
        r.v_regs r.v_nrc_nets r.v_upgraded_nets r.v_splits r.v_prove_secs
        r.v_check_ops "-" r.v_plain_secs "-";
      Fmt.pr "  %-26s %5s %5s %8s %8s %9s %8d %8d %9.4f %6s@."
        "  (discharged)" "" "" "" "" "" r.v_disch_check_ops
        r.v_discharged_ops r.v_disch_secs
        (if r.v_agree then "yes" else "NO"))
    rows;
  Fmt.pr "(proof counters are design-deterministic; wall-clock is \
          machine-dependent)@.";
  e19_write_json rows "BENCH_prove.json"

(* ------------------------------------------------------------------ *)
(* Timing benchmarks (Bechamel)                                         *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let compile_test name src =
    Test.make ~name (Staged.stage (fun () -> ignore (Zeus.compile src)))
  in
  let sim_cycle_test ?(engine = Sim.Firing) name src =
    let d = compile src in
    let sim = Sim.create ~engine d in
    Test.make ~name (Staged.stage (fun () -> Sim.step sim))
  in
  let layout_test name src top =
    let d = compile src in
    Test.make ~name (Staged.stage (fun () -> ignore (Floorplan.of_design d top)))
  in
  Test.make_grouped ~name:"zeus"
    [
      (* E1: compile + simulate scaling on the adder family *)
      compile_test "e1/compile/adder8" (Corpus.adder_n 8);
      compile_test "e1/compile/adder64" (Corpus.adder_n 64);
      sim_cycle_test "e1/cycle/adder8" (Corpus.adder_n 8);
      sim_cycle_test "e1/cycle/adder64" (Corpus.adder_n 64);
      (* E2 *)
      compile_test "e2/compile/blackjack" Corpus.blackjack;
      sim_cycle_test "e2/cycle/blackjack" Corpus.blackjack;
      (* E3 *)
      layout_test "e3/floorplan/htree256" (Corpus.htree 256) "a";
      (* E4 *)
      sim_cycle_test "e4/cycle/patternmatch9" (Corpus.patternmatch 9);
      (* E6 *)
      compile_test "e6/compile/routing32" (Corpus.routing_network 32);
      (* E8: one cycle under each scheduling engine *)
      sim_cycle_test ~engine:Sim.Firing "e8/firing/adder64" (Corpus.adder_n 64);
      sim_cycle_test ~engine:Sim.Fixpoint "e8/fixpoint/adder64"
        (Corpus.adder_n 64);
      sim_cycle_test ~engine:Sim.Relaxation "e8/relaxation/adder64"
        (Corpus.adder_n 64);
      sim_cycle_test ~engine:Sim.Incremental "e8/incremental/adder64"
        (Corpus.adder_n 64);
      (* A1: the abstract's machines *)
      sim_cycle_test "a1/cycle/am2901" Corpus.am2901;
      sim_cycle_test "a1/cycle/stack32" (Corpus.stack ~depth:32 ~width:8);
      sim_cycle_test "a1/cycle/dictionary16"
        (Corpus.dictionary ~slots:16 ~keybits:8);
    ]

let run_timing () =
  let open Bechamel in
  let open Toolkit in
  section "TIMING" "Bechamel estimates (ns per run, monotonic clock)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~stabilize:false ~quota:(Time.second 0.25) ()
  in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some [ e ] -> Fmt.str "%12.0f ns/run" e
        | _ -> "(no estimate)"
      in
      Fmt.pr "  %-32s %s@." name est)
    (List.sort compare rows)

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let batch_smoke = Array.exists (( = ) "--batch-smoke") Sys.argv in
  let timing =
    (not (Array.exists (( = ) "--no-timing") Sys.argv))
    && (not smoke) && not batch_smoke
  in
  if batch_smoke then begin
    (* CI batch job: only E18, at the hosted runner's 2 cores — the
       artifact is uploaded, not checked against the committed jobs=4
       baseline (the counters are jobs-dependent) *)
    Fmt.pr "Zeus benchmark suite (batch smoke mode: E18 only)@.";
    e18_batch ~runs:16 ~cycles:10 ~jobs:2 ()
  end
  else if smoke then begin
    (* CI mode: only the simulator benches, shortened, plus the JSON dump *)
    Fmt.pr "Zeus benchmark suite (smoke mode: simulator benches only)@.";
    e8_simcmp ();
    e13_incremental ~cycles:50 ();
    e14_modular ~smoke:true ();
    e15_parallel ~cycles:20 ();
    e16_opt ~cycles:20 ();
    e17_compiled ~cycles:50 ();
    e18_batch ~runs:16 ~cycles:10 ~jobs:4 ();
    e19_prove ~cycles:50 ()
  end
  else begin
    Fmt.pr "Zeus reproduction benchmark suite (every table/figure of the \
            report's examples)@.";
    e1_adders ();
    e2_blackjack ();
    e3_htree ();
    e4_patternmatch ();
    e5_evalseq ();
    e6_routing ();
    e7_typerules ();
    e8_simcmp ();
    e9_runtime_checks ();
    e10_lazy_ablation ();
    e11_autoplace ();
    e12_optimize ();
    a1_machines ();
    e13_incremental ~cycles:200 ();
    e14_modular ();
    e15_parallel ~cycles:100 ();
    e16_opt ~cycles:100 ();
    e17_compiled ~cycles:200 ();
    e18_batch ~runs:32 ~cycles:25 ~jobs:4 ();
    e19_prove ~cycles:200 ();
    if timing then run_timing ()
  end
