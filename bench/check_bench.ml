(* Bench-regression guard: compare a freshly generated smoke-bench JSON
   (BENCH_sim.json / BENCH_modular.json / BENCH_par.json /
   BENCH_compiled.json) against its committed baseline under
   bench/baselines/.

   Only *deterministic* counters are compared — numeric fields whose
   names mention visits, tasks, barriers, levels, summaries, nets,
   ops, lanes, runs, jobs or groups — with a relative tolerance
   (default 25%).  Wall-clock fields ("seconds", "speedup", and the
   derived "*_runs_per_sec" rates) and boolean agreement flags are
   ignored for tolerance purposes, except that any
   "snapshots_agree": false in the current file is always an error.

   A counter present in the baseline but absent from the current file
   is a hard failure, except for the per-level engine's legacy fields
   (tasks / barriers / levels / fanout): the per-level engine was
   demoted to an explicit opt-in, so its rows may disappear from smoke
   output — that prints a note and passes.

   Usage: check_bench [--tolerance 0.25] BASELINE CURRENT
          check_bench --update-baselines [--baselines-dir DIR] [FILE...]

   The second form rewrites the committed baselines from a fresh run
   instead of the hand-edit workflow: each FILE (default: every
   BENCH_*.json in the current directory) is copied over
   DIR/<basename> (default bench/baselines/).  Run the smoke bench
   first so the counters reflect the smoke-mode workload sizes the CI
   guard compares against.

   The parser is deliberately tiny: it scans for "key": value pairs and
   keeps a running path of the enclosing "design"/"family" labels so a
   mismatch is reported with context.  No JSON library is needed (or
   available in this tree). *)

let tolerance = ref 0.25

let has_sub k sub =
  let n = String.length sub and l = String.length k in
  let rec go i = i + n <= l && (String.sub k i n = sub || go (i + 1)) in
  go 0

(* checked counters: deterministic work metrics, never wall-clock.
   "runs"/"jobs"/"groups" cover the batch engine's sharding counters;
   the per_sec guard keeps the derived rate fields (cold_runs_per_sec
   etc.) out, since those are wall-clock in disguise. *)
let checked_key k =
  let mem = has_sub k in
  (not (mem "per_sec"))
  && (mem "visits" || mem "tasks" || mem "barriers" || mem "levels"
     || mem "summaries" || mem "nets" || mem "fanout" || mem "cycles"
     || mem "gates" || mem "drivers" || mem "folded" || mem "merged"
     || mem "ops" || mem "lanes" || mem "runs" || mem "jobs"
     || mem "groups")

(* legacy per-level engine counters: allowed to vanish from current
   output (the engine is opt-in now), noted rather than failed *)
let legacy_key path =
  List.exists (has_sub path) [ "tasks"; "barriers"; "levels"; "fanout" ]

type entry = {
  path : string; (* "design-label/key" *)
  value : float;
}

(* scan "key": value pairs; strings update the context label, numbers
   become entries, booleans are returned separately *)
(* a missing or unreadable file (e.g. a baseline that was never
   committed, or a bench step that silently produced nothing) is a
   named failure, not an uncaught Sys_error traceback *)
let parse_file file =
  let ic =
    try open_in file
    with Sys_error msg ->
      Printf.eprintf "REGRESSION %s: cannot read file (%s)\n" file msg;
      exit 1
  in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let entries = ref [] and false_agrees = ref [] in
  let label = ref "" in
  let n = String.length s in
  let i = ref 0 in
  let read_string () =
    (* cursor on the opening quote *)
    incr i;
    let start = !i in
    while !i < n && s.[!i] <> '"' do incr i done;
    let str = String.sub s start (!i - start) in
    incr i;
    str
  in
  while !i < n do
    if s.[!i] = '"' then begin
      let key = read_string () in
      (* skip whitespace; a ':' means this was a key *)
      while !i < n && (s.[!i] = ' ' || s.[!i] = '\n') do incr i done;
      if !i < n && s.[!i] = ':' then begin
        incr i;
        while !i < n && (s.[!i] = ' ' || s.[!i] = '\n') do incr i done;
        if !i < n then
          if s.[!i] = '"' then begin
            let v = read_string () in
            if key = "design" || key = "family" then label := v
          end
          else if s.[!i] = 't' || s.[!i] = 'f' then begin
            if s.[!i] = 'f' && key = "snapshots_agree" then
              false_agrees := !label :: !false_agrees;
            while !i < n && (s.[!i] <> ',' && s.[!i] <> '}') do incr i done
          end
          else begin
            let start = !i in
            while
              !i < n
              && (match s.[!i] with
                  | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
                  | _ -> false)
            do
              incr i
            done;
            match float_of_string_opt (String.sub s start (!i - start)) with
            | Some v when checked_key key ->
                (* numbered duplicates: suffix with occurrence index *)
                let base = !label ^ "/" ^ key in
                let occurrences =
                  List.length
                    (List.filter
                       (fun e ->
                         String.length e.path >= String.length base
                         && String.sub e.path 0 (String.length base) = base)
                       !entries)
                in
                entries :=
                  { path = Printf.sprintf "%s#%d" base occurrences; value = v }
                  :: !entries
            | _ -> ()
          end
      end
    end
    else incr i
  done;
  (List.rev !entries, !false_agrees)

(* --update-baselines: copy fresh BENCH_*.json files over the committed
   baselines (byte-for-byte, wall-clock fields included — they are
   ignored by the comparison anyway and keep the file honest about the
   machine it came from) *)
let copy_file src dst =
  let ic =
    try open_in_bin src
    with Sys_error msg ->
      Printf.eprintf "REGRESSION %s: cannot read file (%s)\n" src msg;
      exit 1
  in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc s;
  close_out oc

let update_baselines dir files =
  let files =
    match files with
    | [] ->
        Sys.readdir "."
        |> Array.to_list
        |> List.filter (fun f ->
               String.length f > 6
               && String.sub f 0 6 = "BENCH_"
               && Filename.check_suffix f ".json")
        |> List.sort compare
    | fs -> fs
  in
  if files = [] then begin
    prerr_endline
      "check_bench --update-baselines: no BENCH_*.json files found \
       (run the smoke bench first: dune exec bench/main.exe -- --smoke)";
    exit 1
  end;
  if not (Sys.file_exists dir && Sys.is_directory dir) then begin
    Printf.eprintf "check_bench --update-baselines: no such directory %s\n"
      dir;
    exit 1
  end;
  List.iter
    (fun src ->
      let dst = Filename.concat dir (Filename.basename src) in
      copy_file src dst;
      Printf.printf "updated %s from %s\n" dst src)
    files;
  exit 0

let () =
  let args = ref [] in
  let update = ref false in
  let baselines_dir = ref "bench/baselines" in
  let rec parse = function
    | "--tolerance" :: t :: rest ->
        tolerance := float_of_string t;
        parse rest
    | "--update-baselines" :: rest ->
        update := true;
        parse rest
    | "--baselines-dir" :: d :: rest ->
        baselines_dir := d;
        parse rest
    | x :: rest ->
        args := x :: !args;
        parse rest
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !update then update_baselines !baselines_dir (List.rev !args);
  match List.rev !args with
  | [ baseline; current ] ->
      let base_entries, _ = parse_file baseline in
      let cur_entries, cur_disagree = parse_file current in
      let failures = ref [] in
      List.iter
        (fun b ->
          match List.find_opt (fun c -> c.path = b.path) cur_entries with
          | None ->
              if legacy_key b.path then
                Printf.printf
                  "note: %s: legacy per-level counter absent from current \
                   output (engine is opt-in)\n"
                  b.path
              else
                failures :=
                  Printf.sprintf "%s: present in baseline, missing now" b.path
                  :: !failures
          | Some c ->
              let lo = b.value *. (1.0 -. !tolerance)
              and hi = b.value *. (1.0 +. !tolerance) in
              (* regression = more work than baseline allows; doing
                 *less* work is fine, so only the upper bound is hard —
                 unless the baseline is 0, which must stay 0 (e.g.
                 quiescent visits) *)
              if b.value = 0.0 then begin
                if c.value <> 0.0 then
                  failures :=
                    Printf.sprintf "%s: baseline 0, now %g" b.path c.value
                    :: !failures
              end
              else if c.value > hi then
                failures :=
                  Printf.sprintf "%s: %g exceeds baseline %g by more than %g%%"
                    c.path c.value b.value (!tolerance *. 100.0)
                  :: !failures
              else if c.value < lo then
                (* improvements beyond tolerance are worth noticing but
                   not failing: print and continue *)
                Printf.printf "note: %s improved: %g -> %g\n" c.path b.value
                  c.value)
        base_entries;
      List.iter
        (fun label ->
          failures :=
            Printf.sprintf "%s: snapshots_agree is false" label :: !failures)
        cur_disagree;
      if !failures = [] then begin
        Printf.printf "check_bench: %s vs %s: %d counters within %.0f%%\n"
          current baseline (List.length base_entries) (!tolerance *. 100.0);
        exit 0
      end
      else begin
        List.iter (fun f -> Printf.eprintf "REGRESSION %s\n" f)
          (List.rev !failures);
        exit 1
      end
  | _ ->
      prerr_endline "usage: check_bench [--tolerance T] BASELINE CURRENT";
      exit 2
